// Tests for the three §3.2 algorithms: Random, Max, Grid.
#include <gtest/gtest.h>

#include "common/assert.h"
#include "common/stats.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

constexpr double kSide = 100.0;
constexpr double kR = 15.0;

/// A survey with explicit values (everything measured, default 0).
SurveyData make_survey(const Lattice2D& lattice) {
  SurveyData data(lattice);
  lattice.for_each([&](std::size_t flat, Vec2) { data.record(flat, 0.0); });
  return data;
}

TEST(RandomAlg, ProposalsUniformInBounds) {
  const RandomPlacement alg;
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  const SurveyData survey = make_survey(lattice);
  const PlacementContext ctx =
      PlacementContext::basic(survey, AABB::square(kSide), kR);
  Rng rng(1);
  RunningStats xs;
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p = alg.propose(ctx, rng);
    ASSERT_TRUE(ctx.bounds.contains(p));
    xs.add(p.x);
  }
  EXPECT_NEAR(xs.mean(), 50.0, 2.5);
}

TEST(RandomAlg, IgnoresSurveyEntirely) {
  // Identical RNG stream ⇒ identical proposal, whatever the measurements.
  const RandomPlacement alg;
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  SurveyData empty(lattice);
  SurveyData loud = make_survey(lattice);
  loud.record(5000, 1e9);
  const auto ctx1 = PlacementContext::basic(empty, AABB::square(kSide), kR);
  const auto ctx2 = PlacementContext::basic(loud, AABB::square(kSide), kR);
  Rng r1(9), r2(9);
  EXPECT_EQ(alg.propose(ctx1, r1), alg.propose(ctx2, r2));
}

TEST(MaxAlg, PicksTheWorstMeasuredPoint) {
  const MaxPlacement alg;
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  SurveyData survey = make_survey(lattice);
  const std::size_t hot = lattice.index(63, 17);
  survey.record(hot, 25.0);
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  Rng rng(2);
  EXPECT_EQ(alg.propose(ctx, rng), lattice.point(hot));
}

TEST(MaxAlg, IgnoresUnmeasuredPoints) {
  const MaxPlacement alg;
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  SurveyData survey(lattice);
  survey.record(lattice.index(10, 10), 2.0);  // only measurement
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  Rng rng(3);
  EXPECT_EQ(alg.propose(ctx, rng), lattice.point(lattice.index(10, 10)));
}

TEST(MaxAlg, TieBreaksToLowestFlatIndex) {
  const MaxPlacement alg;
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  SurveyData survey = make_survey(lattice);
  survey.record(lattice.index(80, 80), 7.0);
  survey.record(lattice.index(20, 20), 7.0);  // same value, earlier index
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  Rng rng(4);
  EXPECT_EQ(alg.propose(ctx, rng), lattice.point(lattice.index(20, 20)));
}

TEST(MaxAlg, RequiresMeasurements) {
  const MaxPlacement alg;
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  const SurveyData survey(lattice);  // nothing measured
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  Rng rng(5);
  EXPECT_THROW(alg.propose(ctx, rng), CheckFailure);
}

TEST(MaxAlg, IsDeterministic) {
  const MaxPlacement alg;
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  SurveyData survey = make_survey(lattice);
  survey.record(777, 3.0);
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  Rng r1(1), r2(99);  // different streams — Max must not consume them
  EXPECT_EQ(alg.propose(ctx, r1), alg.propose(ctx, r2));
}

TEST(GridAlg, PaperGeometryOfGridCenters) {
  // §3.2.3 with Table 1 parameters: NG=400 ⇒ 20 per axis, gridSide=30;
  // Xc(1)=15, Xc(20)=85, spacing (100-30)/19.
  const GridPlacement alg(400);
  EXPECT_EQ(alg.grids_per_axis(), 20u);
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  const SurveyData survey = make_survey(lattice);
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  const auto scores = alg.scores(ctx);
  ASSERT_EQ(scores.size(), 400u);
  EXPECT_NEAR(scores.front().center.x, 15.0, 1e-9);
  EXPECT_NEAR(scores.front().center.y, 15.0, 1e-9);
  EXPECT_NEAR(scores.back().center.x, 85.0, 1e-9);
  EXPECT_NEAR(scores.back().center.y, 85.0, 1e-9);
  const double spacing = scores[1].center.x - scores[0].center.x;
  EXPECT_NEAR(spacing, 70.0 / 19.0, 1e-9);
}

TEST(GridAlg, PgMatchesPaperFormulaApproximately) {
  // PG ≈ PT (2R)²/Side² = 10201 · 900/10000 ≈ 918; exact membership gives
  // 31×31 = 961 for interior grids (inclusive boundaries).
  const GridPlacement alg(400);
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  const SurveyData survey = make_survey(lattice);
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  const auto scores = alg.scores(ctx);
  for (const auto& s : scores) {
    EXPECT_GE(s.points, 900u);
    EXPECT_LE(s.points, 1024u);
  }
}

TEST(GridAlg, PicksGridContainingSpreadErrorMass) {
  // A diffuse error blob (many moderately-bad points) must attract Grid to
  // a center near the blob even though no single point is the global max.
  const GridPlacement alg(400);
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  SurveyData survey = make_survey(lattice);
  // Blob of value 5 around (30, 70), radius 12.
  lattice.for_each_in_disk({30.0, 70.0}, 12.0, [&](std::size_t flat, Vec2) {
    survey.record(flat, 5.0);
  });
  // One isolated very loud point far away.
  survey.record(lattice.index(90, 10), 60.0);
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  Rng rng(6);
  const Vec2 pick = alg.propose(ctx, rng);
  EXPECT_LT(distance(pick, {30.0, 70.0}), 12.0)
      << "grid landed at " << pick << " instead of the blob";
}

TEST(GridAlg, MaxPicksTheLoudPointInstead) {
  // Contrast case for the previous test: Max chases the isolated maximum
  // (its documented weakness, §3.2.2).
  const MaxPlacement alg;
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  SurveyData survey = make_survey(lattice);
  lattice.for_each_in_disk({30.0, 70.0}, 12.0, [&](std::size_t flat, Vec2) {
    survey.record(flat, 5.0);
  });
  survey.record(lattice.index(90, 10), 60.0);
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  Rng rng(7);
  EXPECT_EQ(alg.propose(ctx, rng), (Vec2{90.0, 10.0}));
}

TEST(GridAlg, HonoursPartialSurveys) {
  const GridPlacement alg(400);
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  SurveyData survey(lattice);
  // Only one measured point, inside the grid whose center is (15, 15).
  survey.record(lattice.index(15, 15), 4.0);
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  Rng rng(8);
  const Vec2 pick = alg.propose(ctx, rng);
  // The winning grid must contain the measured point.
  EXPECT_LE(std::fabs(pick.x - 15.0), 15.0);
  EXPECT_LE(std::fabs(pick.y - 15.0), 15.0);
}

TEST(GridAlg, RejectsInvalidConfigurations) {
  EXPECT_THROW(GridPlacement(399), CheckFailure);  // not a perfect square
  EXPECT_THROW(GridPlacement(1), CheckFailure);    // fewer than 2 per axis
  // gridSide = 2R = 30 > terrain of 20 m: undefined.
  const GridPlacement alg(400);
  const Lattice2D lattice(AABB::square(20.0), 1.0);
  const SurveyData survey(lattice);
  const auto ctx = PlacementContext::basic(survey, AABB::square(20.0), kR);
  EXPECT_THROW(alg.scores(ctx), CheckFailure);
}

TEST(GridAlg, NormalizedVariantAgreesOnUniformSurveys) {
  // On a complete survey the density-normalized score ranks grids almost
  // identically (PG varies only at the boundary); both must pick the same
  // hot blob.
  const GridPlacement grid(400);
  const GridPlacement norm(400, 2.0, true);
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  SurveyData survey = make_survey(lattice);
  lattice.for_each_in_disk({70.0, 30.0}, 10.0, [&](std::size_t flat, Vec2) {
    survey.record(flat, 8.0);
  });
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  Rng r1(1), r2(1);
  EXPECT_LT(distance(grid.propose(ctx, r1), norm.propose(ctx, r2)), 10.0);
}

TEST(GridAlg, NormalizedVariantResistsSamplingBias) {
  // Two equally-bad blobs, one measured densely and one sparsely: the
  // cumulative score chases the densely-measured one, the normalized
  // score does not.
  const GridPlacement grid(400);
  const GridPlacement norm(400, 2.0, true);
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  SurveyData survey(lattice);
  // Dense blob at (30,30), value 5: every lattice point measured.
  lattice.for_each_in_disk({30.0, 30.0}, 10.0, [&](std::size_t flat, Vec2) {
    survey.record(flat, 5.0);
  });
  // Sparse blob at (70,70), value 9 (worse!), every 4th point measured.
  lattice.for_each_in_disk({70.0, 70.0}, 10.0, [&](std::size_t flat, Vec2 p) {
    const auto [i, j] = lattice.coords(flat);
    if (i % 4 == 0 && j % 4 == 0) survey.record(flat, 9.0);
    (void)p;
  });
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  Rng r1(2), r2(2);
  // Cumulative score chases the densely-measured (but milder) blob.
  EXPECT_LT(distance(grid.propose(ctx, r1), {30.0, 30.0}), 12.0);
  // Normalized score targets the worse blob; with only a handful of
  // measured points, ties among grids clipping the blob allow the pick to
  // sit anywhere whose 30 m box covers part of it — assert it chose the
  // right blob, not a specific grid.
  const Vec2 norm_pick = norm.propose(ctx, r2);
  EXPECT_LT(distance(norm_pick, {70.0, 70.0}),
            distance(norm_pick, {30.0, 30.0}));
  EXPECT_LT(distance(norm_pick, {70.0, 70.0}), 26.0);
}

TEST(GridAlg, NamesDistinguishVariants) {
  EXPECT_EQ(GridPlacement().name(), "grid");
  EXPECT_EQ(GridPlacement(400, 2.0, true).name(), "grid-norm");
}

TEST(GridAlg, ComplexityGrowsLinearlyInNG) {
  // O(NG · PG): per-grid work is bounded, so score count == NG.
  const Lattice2D lattice(AABB::square(kSide), 1.0);
  const SurveyData survey = make_survey(lattice);
  const auto ctx = PlacementContext::basic(survey, AABB::square(kSide), kR);
  EXPECT_EQ(GridPlacement(100).scores(ctx).size(), 100u);
  EXPECT_EQ(GridPlacement(900).scores(ctx).size(), 900u);
}

}  // namespace
}  // namespace abp
