#include "placement/facility_location.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "field/beacon_field.h"
#include "field/generators.h"
#include "rng/rng.h"

namespace abp {
namespace {

const Lattice2D kLattice(AABB::square(100.0), 1.0);

TEST(KMedian, SingleFacilityGoesToTheCenter) {
  const auto chosen = greedy_kmedian_deployment(kLattice, 1, {});
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_NEAR(chosen[0].x, 50.0, 3.0);
  EXPECT_NEAR(chosen[0].y, 50.0, 3.0);
}

TEST(KMedian, FacilitiesAreDistinctAndInBounds) {
  const auto chosen = greedy_kmedian_deployment(kLattice, 9, {});
  ASSERT_EQ(chosen.size(), 9u);
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    EXPECT_TRUE(kLattice.bounds().contains(chosen[i]));
    for (std::size_t j = i + 1; j < chosen.size(); ++j) {
      EXPECT_NE(chosen[i], chosen[j]);
    }
  }
}

TEST(KMedian, ObjectiveDecreasesMonotonicallyInK) {
  double prev = std::numeric_limits<double>::max();
  for (std::size_t k : {1u, 2u, 4u, 9u, 16u}) {
    const auto chosen = greedy_kmedian_deployment(kLattice, k, {});
    const double obj = kmedian_objective(kLattice, chosen, {});
    EXPECT_LT(obj, prev) << "k=" << k;
    prev = obj;
  }
}

TEST(KMedian, BeatsRandomDeploymentOfEqualSize) {
  const std::size_t k = 16;
  const auto engineered = greedy_kmedian_deployment(kLattice, k, {});
  const double engineered_obj = kmedian_objective(kLattice, engineered, {});

  Rng rng(3);
  double random_total = 0.0;
  const int reps = 5;
  for (int r = 0; r < reps; ++r) {
    std::vector<Vec2> random_positions;
    for (std::size_t i = 0; i < k; ++i) {
      random_positions.push_back(
          {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
    random_total += kmedian_objective(kLattice, random_positions, {});
  }
  EXPECT_LT(engineered_obj, 0.8 * random_total / reps);
}

TEST(KMedian, NearUniformGridQualityAtSquareK) {
  // For k=16 the greedy solution should approach the quality of the ideal
  // 4x4 grid (mean distance ≈ 0.3826 * cell side ≈ 9.57 m for 25 m cells).
  const auto chosen = greedy_kmedian_deployment(kLattice, 16, {});
  const double obj = kmedian_objective(kLattice, chosen, {});
  BeaconField grid_field(AABB::square(100.0));
  place_grid(grid_field, 4, 4);
  std::vector<Vec2> grid_positions;
  grid_field.for_each_active(
      [&](const Beacon& b) { grid_positions.push_back(b.pos); });
  const double grid_obj = kmedian_objective(kLattice, grid_positions, {});
  EXPECT_LT(obj, 1.15 * grid_obj);
}

TEST(KMedian, DistanceCapMakesObjectiveCoverageLike) {
  const KMedianConfig capped{.site_stride = 4, .demand_stride = 2,
                             .distance_cap = 15.0};
  const auto chosen = greedy_kmedian_deployment(kLattice, 4, capped);
  const double obj = kmedian_objective(kLattice, chosen, capped);
  EXPECT_LE(obj, 15.0);
  EXPECT_GT(obj, 0.0);
}

TEST(KMedian, Deterministic) {
  const auto a = greedy_kmedian_deployment(kLattice, 6, {});
  const auto b = greedy_kmedian_deployment(kLattice, 6, {});
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(KMedian, Validation) {
  EXPECT_THROW(greedy_kmedian_deployment(kLattice, 0, {}), CheckFailure);
  KMedianConfig bad;
  bad.site_stride = 0;
  EXPECT_THROW(greedy_kmedian_deployment(kLattice, 1, bad), CheckFailure);
  EXPECT_THROW(kmedian_objective(kLattice, {}, {}), CheckFailure);
}

}  // namespace
}  // namespace abp
