#include "placement/refined_grid_placement.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "field/generators.h"
#include "placement/grid_placement.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

struct Scenario {
  AABB bounds = AABB::square(100.0);
  BeaconField field{bounds, 20.0};
  PerBeaconNoiseModel model{15.0, 0.1, 17};
  Lattice2D lattice{bounds, 1.0};
  ErrorMap map{lattice};
  SurveyData survey{lattice};

  explicit Scenario(std::size_t beacons, std::uint64_t seed = 6) {
    Rng rng(seed);
    scatter_uniform(field, beacons, rng);
    map.compute(field, model);
    survey = SurveyData::from_error_map(map);
  }

  PlacementContext ctx() {
    PlacementContext c = PlacementContext::basic(survey, bounds, 15.0);
    c.field = &field;
    c.model = &model;
    c.truth = &map;
    return c;
  }

  double gain_at(Vec2 pos) {
    return map.mean() - map.mean_if_added(field, model, pos);
  }
};

TEST(RefinedGrid, NeverWorseThanPlainGrid) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Scenario s(25, seed);
    const GridPlacement plain;
    const RefinedGridPlacement refined;
    Rng r1(seed), r2(seed);
    const double plain_gain = s.gain_at(plain.propose(s.ctx(), r1));
    const double refined_gain = s.gain_at(refined.propose(s.ctx(), r2));
    EXPECT_GE(refined_gain, plain_gain - 1e-9) << "seed " << seed;
  }
}

TEST(RefinedGrid, StaysInsideTheWinningGridBox) {
  Scenario s(25);
  const GridPlacement plain;
  const RefinedGridPlacement refined;
  Rng r1(9), r2(9);
  const Vec2 center = plain.propose(s.ctx(), r1);
  const Vec2 pick = refined.propose(s.ctx(), r2);
  EXPECT_LE(std::fabs(pick.x - center.x), 15.0 + 1e-9);
  EXPECT_LE(std::fabs(pick.y - center.y), 15.0 + 1e-9);
}

TEST(RefinedGrid, CanRepairCornersGridCannotReach) {
  // A field covering everything except the (0,0) corner: Grid's nearest
  // center is (15,15), whose beacon (R=15) cannot cover the corner. The
  // refined search inside that grid's box [0,30]² can move toward the
  // corner enough to cover it.
  Scenario s(0);
  for (double x = 10.0; x <= 90.0; x += 11.0) {
    for (double y = 10.0; y <= 90.0; y += 11.0) {
      if (x < 30.0 && y < 30.0) continue;  // leave the corner bare
      s.field.add({x, y});
    }
  }
  s.map.compute(s.field, s.model);
  s.survey = SurveyData::from_error_map(s.map);

  const RefinedGridPlacement refined(400, 2.0, 2);
  Rng rng(3);
  const Vec2 pick = refined.propose(s.ctx(), rng);
  // The refinement must move off the grid-center lattice toward the bare
  // corner.
  EXPECT_LT(pick.x + pick.y, 30.0);
}

TEST(RefinedGrid, RequiresFullContext) {
  Scenario s(10);
  PlacementContext bare = PlacementContext::basic(s.survey, s.bounds, 15.0);
  const RefinedGridPlacement refined;
  Rng rng(4);
  EXPECT_THROW(refined.propose(bare, rng), CheckFailure);
}

TEST(RefinedGrid, NameAndValidation) {
  EXPECT_EQ(RefinedGridPlacement().name(), "grid-refined");
  EXPECT_THROW(RefinedGridPlacement(400, 2.0, 0), CheckFailure);
}

}  // namespace
}  // namespace abp
