#include "placement/coverage_placement.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "field/generators.h"
#include "loc/coverage.h"
#include "loc/error_map.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

struct Scenario {
  AABB bounds = AABB::square(100.0);
  BeaconField field{bounds, 20.0};
  PerBeaconNoiseModel model{15.0, 0.0, 2};
  Lattice2D lattice{bounds, 2.0};
  ErrorMap map{lattice};
  SurveyData survey{lattice};

  void finish() {
    map.compute(field, model);
    survey = SurveyData::from_error_map(map);
  }

  PlacementContext ctx() {
    PlacementContext c = PlacementContext::basic(survey, bounds, 15.0);
    c.field = &field;
    c.model = &model;
    c.truth = &map;
    return c;
  }
};

TEST(CoverageAlg, TargetsTheUncoveredVoid) {
  // All beacons in the west half: the east void is the biggest coverage
  // win; the proposal must land there, at least R from existing coverage.
  Scenario s;
  for (double y = 10.0; y <= 90.0; y += 20.0) {
    s.field.add({15.0, y});
    s.field.add({35.0, y});
  }
  s.finish();
  Rng rng(1);
  const CoveragePlacement alg(2);
  const Vec2 pick = alg.propose(s.ctx(), rng);
  EXPECT_GT(pick.x, 60.0);
}

TEST(CoverageAlg, ImprovesCoverageMoreThanErrorDrivenPlacement) {
  Scenario s;
  Rng gen(2);
  scatter_uniform(s.field, 12, gen);
  s.finish();
  const auto before =
      analyze_coverage(s.field, s.model, s.lattice).at_least(1);

  Rng rng(3);
  const CoveragePlacement alg(2);
  const Vec2 pick = alg.propose(s.ctx(), rng);
  s.field.add(s.bounds.clamp(pick));
  const auto after =
      analyze_coverage(s.field, s.model, s.lattice).at_least(1);
  // A full new disk is πR²/Side² ≈ 7.07%; the coverage maximizer should
  // realize most of it on a sparse field.
  EXPECT_GT(after - before, 0.05);
}

TEST(CoverageAlg, FullyCoveredFieldStillProposesInBounds) {
  Scenario s;
  place_grid(s.field, 8, 8);  // dense: everything covered
  s.finish();
  Rng rng(4);
  const CoveragePlacement alg(4);
  const Vec2 pick = alg.propose(s.ctx(), rng);
  EXPECT_TRUE(s.bounds.contains(pick));
}

TEST(CoverageAlg, IgnoresErrorMagnitudes) {
  // Identical coverage geometry, wildly different error readings ⇒ same
  // proposal (coverage placement never reads the survey values).
  Scenario s;
  s.field.add({20.0, 20.0});
  s.finish();
  Rng r1(5);
  const CoveragePlacement alg(2);
  const Vec2 a = alg.propose(s.ctx(), r1);
  // Corrupt the survey values.
  for (std::size_t flat = 0; flat < s.lattice.size(); ++flat) {
    s.survey.record(flat, 12345.0);
  }
  Rng r2(6);
  const Vec2 b = alg.propose(s.ctx(), r2);
  EXPECT_EQ(a, b);
}

TEST(CoverageAlg, RequiresContext) {
  Scenario s;
  s.field.add({20.0, 20.0});
  s.finish();
  PlacementContext bare =
      PlacementContext::basic(s.survey, s.bounds, 15.0);
  Rng rng(7);
  const CoveragePlacement alg;
  EXPECT_THROW(alg.propose(bare, rng), CheckFailure);
}

TEST(CoverageAlg, Name) {
  EXPECT_EQ(CoveragePlacement().name(), "coverage");
}

}  // namespace
}  // namespace abp
