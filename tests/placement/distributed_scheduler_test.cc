#include "placement/distributed_scheduler.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

BeaconField dense_field(std::size_t n, std::uint64_t seed) {
  BeaconField field(AABB::square(100.0), 15.0);
  Rng rng(seed);
  scatter_uniform(field, n, rng);
  return field;
}

std::size_t active_neighbors_of(const BeaconField& field, const Beacon& b,
                                double radius) {
  std::size_t n = 0;
  field.query_disk(b.pos, radius, [&](const Beacon& other) {
    if (other.id != b.id) ++n;
  });
  return n;
}

TEST(Distributed, ThinsOverProvisionedDeployments) {
  BeaconField field = dense_field(240, 1);
  Rng rng(2);
  const auto r = distributed_density_control(field, {}, rng);
  EXPECT_EQ(r.initial_active, 240u);
  EXPECT_LT(r.final_active, 160u);
  EXPECT_GT(r.final_active, 40u);  // must not collapse coverage
  EXPECT_EQ(field.active_count(), r.final_active);
  EXPECT_EQ(field.size(), 240u);  // nothing removed, only silenced
}

TEST(Distributed, ConvergesAndInvariantsHold) {
  BeaconField field = dense_field(200, 3);
  const DistributedSchedulerConfig config;
  Rng rng(4);
  const auto r = distributed_density_control(field, config, rng);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.rounds, config.max_rounds);

  // At convergence: no active beacon is strictly redundant-and-required to
  // backoff forever (hearing > max is possible only if every deactivation
  // attempt failed, impossible at convergence with p>0), and no passive
  // beacon is starved.
  field.for_each_active([&](const Beacon& b) {
    EXPECT_LE(active_neighbors_of(field, b, config.neighbor_radius),
              config.max_active_neighbors)
        << "active beacon " << b.id << " still redundant";
  });
  for (BeaconId id = 0; id < 200; ++id) {
    const auto b = field.get(id);
    if (b && !b->active) {
      EXPECT_GE(active_neighbors_of(field, *b, config.neighbor_radius),
                config.min_active_neighbors)
          << "passive beacon " << id << " starved";
    }
  }
}

TEST(Distributed, SparseFieldStaysFullyActive) {
  BeaconField field = dense_field(15, 5);  // ~1 neighbor on average
  Rng rng(6);
  const auto r = distributed_density_control(field, {}, rng);
  EXPECT_EQ(r.final_active, 15u);
  EXPECT_TRUE(r.converged);
}

TEST(Distributed, LocalizationSurvivesThinning) {
  // The protocol uses no error map, yet the thinned subset must keep mean
  // LE close to the all-active value on an over-provisioned field.
  BeaconField field = dense_field(240, 7);
  const PerBeaconNoiseModel model(15.0, 0.0, 1);
  const Lattice2D lattice(AABB::square(100.0), 2.0);
  ErrorMap map(lattice);
  map.compute(field, model);
  const double before = map.mean();

  Rng rng(8);
  distributed_density_control(field, {}, rng);
  map.compute(field, model);
  EXPECT_LT(map.mean(), 2.0 * before);
  EXPECT_LT(map.mean(), 8.0);  // still good absolute localization
}

TEST(Distributed, DeterministicGivenSeed) {
  BeaconField a = dense_field(150, 9);
  BeaconField b = dense_field(150, 9);
  Rng ra(10), rb(10);
  const auto r1 = distributed_density_control(a, {}, ra);
  const auto r2 = distributed_density_control(b, {}, rb);
  EXPECT_EQ(r1.final_active, r2.final_active);
  EXPECT_EQ(a.active_ids(), b.active_ids());
}

TEST(Distributed, ReactivationRepairsCoverageHoles) {
  // Deactivate everything manually; the protocol must wake beacons up.
  BeaconField field = dense_field(100, 11);
  for (BeaconId id : field.active_ids()) field.set_active(id, false);
  ASSERT_EQ(field.active_count(), 0u);
  Rng rng(12);
  const auto r = distributed_density_control(field, {}, rng);
  EXPECT_GT(r.final_active, 20u);
}

TEST(Distributed, ConfigValidation) {
  BeaconField field = dense_field(10, 13);
  Rng rng(14);
  DistributedSchedulerConfig bad;
  bad.neighbor_radius = 0.0;
  EXPECT_THROW(distributed_density_control(field, bad, rng), CheckFailure);
  bad = {};
  bad.min_active_neighbors = 5;
  bad.max_active_neighbors = 3;
  EXPECT_THROW(distributed_density_control(field, bad, rng), CheckFailure);
  bad = {};
  bad.backoff_probability = 0.0;
  EXPECT_THROW(distributed_density_control(field, bad, rng), CheckFailure);
}

}  // namespace
}  // namespace abp
