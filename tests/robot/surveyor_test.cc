#include "robot/surveyor.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

struct Scenario {
  AABB bounds = AABB::square(40.0);
  BeaconField field{bounds, 20.0};
  PerBeaconNoiseModel model{15.0, 0.2, 7};
  Lattice2D lattice{bounds, 1.0};

  Scenario() {
    Rng rng(3);
    scatter_uniform(field, 12, rng);
  }
};

TEST(Surveyor, IdealCompleteSurveyEqualsGroundTruth) {
  // §3.1 baseline: complete exploration, perfect GPS, no measurement noise
  // ⇒ the survey IS the error map.
  Scenario s;
  ErrorMap truth(s.lattice);
  truth.compute(s.field, s.model);

  const Surveyor surveyor(s.field, s.model);
  Rng rng(1);
  const SurveyData survey = surveyor.survey_complete(s.lattice, rng);

  EXPECT_DOUBLE_EQ(survey.coverage(), 1.0);
  s.lattice.for_each([&](std::size_t flat, Vec2) {
    ASSERT_DOUBLE_EQ(survey.value(flat), truth.value(flat));
  });
}

TEST(Surveyor, PartialTourMeasuresOnlyVisitedPoints) {
  Scenario s;
  const Surveyor surveyor(s.field, s.model);
  Rng rng(2);
  const auto tour = boustrophedon_tour(s.lattice, 4);
  const SurveyData survey = surveyor.survey(s.lattice, tour, rng);
  EXPECT_EQ(survey.measured_count(), tour.size());
  EXPECT_LT(survey.coverage(), 0.1);
  // Unvisited points are unmeasured.
  EXPECT_FALSE(survey.measured(s.lattice.index(1, 0)));
  EXPECT_TRUE(survey.measured(s.lattice.index(0, 0)));
}

TEST(Surveyor, GpsErrorPerturbsReadings) {
  Scenario s;
  ErrorMap truth(s.lattice);
  truth.compute(s.field, s.model);

  SurveyorConfig config;
  config.gps = GpsModel(2.0);
  const Surveyor surveyor(s.field, s.model, config);
  Rng rng(4);
  const SurveyData survey = surveyor.survey_complete(s.lattice, rng);

  // Readings differ from truth, but remain unbiased-ish in aggregate:
  // |estimate - fix| >= |estimate - true| - |gps error|.
  std::size_t differing = 0;
  s.lattice.for_each([&](std::size_t flat, Vec2) {
    if (survey.value(flat) != truth.value(flat)) ++differing;
  });
  EXPECT_GT(differing, s.lattice.size() / 2);
  // GPS noise of 2 m cannot move the mean reading by more than ~2·E|N|.
  EXPECT_NEAR(survey.mean(), truth.mean(), 2.5);
}

TEST(Surveyor, MeasurementNoiseClampsAtZero) {
  Scenario s;
  SurveyorConfig config;
  config.measurement_noise = 50.0;  // absurdly noisy instrument
  const Surveyor surveyor(s.field, s.model, config);
  Rng rng(5);
  const SurveyData survey = surveyor.survey_complete(s.lattice, rng);
  s.lattice.for_each([&](std::size_t flat, Vec2) {
    ASSERT_GE(survey.value(flat), 0.0);
  });
}

TEST(Surveyor, RevisitedPointsKeepLatestReading) {
  Scenario s;
  SurveyorConfig config;
  config.measurement_noise = 1.0;
  const Surveyor surveyor(s.field, s.model, config);
  Rng rng(6);
  // Visit the same point twice: the second (different-noise) reading wins.
  const std::vector<std::size_t> tour{5, 5};
  const SurveyData survey = surveyor.survey(s.lattice, tour, rng);
  EXPECT_EQ(survey.measured_count(), 1u);

  Rng rng2(6);
  const SurveyData first_only =
      surveyor.survey(s.lattice, {5}, rng2);
  // With the same stream, the single-visit reading equals the first
  // reading, which the revisit then overwrote.
  EXPECT_NE(survey.value(5), first_only.value(5));
}

TEST(Gps, IdealFixIsExact) {
  const GpsModel gps(0.0);
  Rng rng(7);
  EXPECT_EQ(gps.fix({12.0, 34.0}, rng), (Vec2{12.0, 34.0}));
  EXPECT_TRUE(gps.ideal());
}

TEST(Gps, ErrorStatisticsMatchSigma) {
  const GpsModel gps(3.0);
  Rng rng(8);
  RunningStats dx;
  for (int i = 0; i < 20000; ++i) {
    dx.add(gps.fix({0.0, 0.0}, rng).x);
  }
  EXPECT_NEAR(dx.mean(), 0.0, 0.1);
  EXPECT_NEAR(dx.stddev(), 3.0, 0.1);
}

TEST(Gps, NegativeSigmaRejected) {
  EXPECT_THROW(GpsModel(-1.0), CheckFailure);
}

}  // namespace
}  // namespace abp
