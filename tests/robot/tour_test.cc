#include "robot/tour.h"

#include <gtest/gtest.h>
#include <set>

#include "common/assert.h"

namespace abp {
namespace {

Lattice2D lattice() { return Lattice2D(AABB::square(20.0), 1.0); }

TEST(Boustrophedon, Stride1CoversEveryPointExactlyOnce) {
  const Lattice2D l = lattice();
  const auto tour = boustrophedon_tour(l, 1);
  EXPECT_EQ(tour.size(), l.size());
  const std::set<std::size_t> unique(tour.begin(), tour.end());
  EXPECT_EQ(unique.size(), l.size());
}

TEST(Boustrophedon, SerpentineRowOrder) {
  const Lattice2D l(AABB::square(2.0), 1.0);  // 3x3
  const auto tour = boustrophedon_tour(l, 1);
  // Row 0 L→R: (0,0)(1,0)(2,0); row 1 R→L: (2,1)(1,1)(0,1); row 2 L→R.
  const std::vector<std::size_t> expected{
      l.index(0, 0), l.index(1, 0), l.index(2, 0),
      l.index(2, 1), l.index(1, 1), l.index(0, 1),
      l.index(0, 2), l.index(1, 2), l.index(2, 2)};
  EXPECT_EQ(tour, expected);
}

TEST(Boustrophedon, SerpentineMinimizesTravel) {
  // Consecutive waypoints are adjacent: total length = (#points - 1) * step.
  const Lattice2D l = lattice();
  const auto tour = boustrophedon_tour(l, 1);
  EXPECT_DOUBLE_EQ(tour_length(l, tour),
                   static_cast<double>(tour.size() - 1) * l.step());
}

TEST(Boustrophedon, StrideSubsamples) {
  const Lattice2D l = lattice();  // 21x21
  const auto tour = boustrophedon_tour(l, 2);
  EXPECT_EQ(tour.size(), 11u * 11u);
  for (std::size_t flat : tour) {
    const auto [i, j] = l.coords(flat);
    EXPECT_EQ(i % 2, 0u);
    EXPECT_EQ(j % 2, 0u);
  }
}

TEST(Boustrophedon, RejectsZeroStride) {
  EXPECT_THROW(boustrophedon_tour(lattice(), 0), CheckFailure);
}

TEST(RandomWalk, StepsAreLatticeNeighbours) {
  const Lattice2D l = lattice();
  Rng rng(1);
  const auto tour = random_walk_tour(l, {10.0, 10.0}, 500, rng);
  EXPECT_EQ(tour.size(), 501u);
  for (std::size_t k = 1; k < tour.size(); ++k) {
    EXPECT_DOUBLE_EQ(distance(l.point(tour[k - 1]), l.point(tour[k])),
                     l.step());
  }
}

TEST(RandomWalk, StartsNearestToStart) {
  const Lattice2D l = lattice();
  Rng rng(2);
  const auto tour = random_walk_tour(l, {10.3, 9.8}, 5, rng);
  EXPECT_EQ(tour.front(), l.index(10, 10));
}

TEST(RandomWalk, StaysInBounds) {
  const Lattice2D l = lattice();
  Rng rng(3);
  // Start in a corner and walk long enough to hit every wall.
  const auto tour = random_walk_tour(l, {0.0, 0.0}, 2000, rng);
  for (std::size_t flat : tour) {
    EXPECT_LT(flat, l.size());
  }
}

TEST(Subsample, FractionControlsSize) {
  const Lattice2D l = lattice();  // 441 points
  Rng rng(4);
  const auto tour = subsample_tour(l, 0.25, rng);
  EXPECT_EQ(tour.size(), 111u);  // ceil(0.25 * 441)
  const std::set<std::size_t> unique(tour.begin(), tour.end());
  EXPECT_EQ(unique.size(), tour.size());  // distinct points
}

TEST(Subsample, FullFractionIsPermutation) {
  const Lattice2D l = lattice();
  Rng rng(5);
  const auto tour = subsample_tour(l, 1.0, rng);
  EXPECT_EQ(tour.size(), l.size());
}

TEST(Subsample, RejectsBadFraction) {
  Rng rng(6);
  EXPECT_THROW(subsample_tour(lattice(), 0.0, rng), CheckFailure);
  EXPECT_THROW(subsample_tour(lattice(), 1.5, rng), CheckFailure);
}

TEST(TourLength, EmptyAndSingleton) {
  const Lattice2D l = lattice();
  EXPECT_DOUBLE_EQ(tour_length(l, {}), 0.0);
  EXPECT_DOUBLE_EQ(tour_length(l, {5}), 0.0);
}

}  // namespace
}  // namespace abp
