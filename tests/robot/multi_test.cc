#include "robot/multi.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

struct Scene {
  AABB bounds = AABB::square(60.0);
  BeaconField field{bounds, 20.0};
  PerBeaconNoiseModel model{15.0, 0.0, 3};
  Lattice2D lattice{bounds, 1.0};

  Scene() {
    Rng rng(2);
    scatter_uniform(field, 12, rng);
  }
};

TEST(MultiRobot, MergedSurveyIsComplete) {
  Scene scene;
  const Surveyor surveyor(scene.field, scene.model);
  Rng rng(1);
  const auto result =
      multi_robot_survey(surveyor, scene.lattice, 4, 1, rng);
  EXPECT_DOUBLE_EQ(result.survey.coverage(), 1.0);
  EXPECT_EQ(result.points.size(), 4u);
  EXPECT_EQ(result.travel_distance.size(), 4u);
}

TEST(MultiRobot, MergedEqualsGroundTruthWithIdealInstruments) {
  Scene scene;
  ErrorMap truth(scene.lattice);
  truth.compute(scene.field, scene.model);
  const Surveyor surveyor(scene.field, scene.model);
  Rng rng(2);
  const auto result =
      multi_robot_survey(surveyor, scene.lattice, 3, 1, rng);
  scene.lattice.for_each([&](std::size_t flat, Vec2) {
    ASSERT_DOUBLE_EQ(result.survey.value(flat), truth.value(flat));
  });
}

TEST(MultiRobot, StripsPartitionThePoints) {
  Scene scene;
  const Surveyor surveyor(scene.field, scene.model);
  Rng rng(3);
  const auto result =
      multi_robot_survey(surveyor, scene.lattice, 5, 1, rng);
  std::size_t total = 0;
  for (std::size_t p : result.points) total += p;
  EXPECT_EQ(total, scene.lattice.size());  // no overlap, no gap
}

TEST(MultiRobot, MoreRobotsShrinkMakespan) {
  Scene scene;
  const Surveyor surveyor(scene.field, scene.model);
  const SurveyCostModel cost;
  Rng r1(4), r4(4);
  const double t1 =
      multi_robot_survey(surveyor, scene.lattice, 1, 1, r1).makespan(cost);
  const double t4 =
      multi_robot_survey(surveyor, scene.lattice, 4, 1, r4).makespan(cost);
  EXPECT_LT(t4, t1 / 2.5);  // near-linear speedup
}

TEST(MultiRobot, TotalTimeRoughlyConserved) {
  // Parallelism shrinks the makespan, not the total robot-time.
  Scene scene;
  const Surveyor surveyor(scene.field, scene.model);
  const SurveyCostModel cost;
  Rng r1(5), r4(5);
  const double total1 =
      multi_robot_survey(surveyor, scene.lattice, 1, 1, r1).total_time(cost);
  const double total4 =
      multi_robot_survey(surveyor, scene.lattice, 4, 1, r4).total_time(cost);
  EXPECT_NEAR(total4, total1, 0.1 * total1);
}

TEST(MultiRobot, StrideSubsamples) {
  Scene scene;
  const Surveyor surveyor(scene.field, scene.model);
  Rng rng(6);
  const auto result =
      multi_robot_survey(surveyor, scene.lattice, 2, 3, rng);
  EXPECT_LT(result.survey.coverage(), 0.2);
  EXPECT_GT(result.survey.coverage(), 0.05);
}

TEST(CostModel, TimeArithmetic) {
  const SurveyCostModel cost{.speed = 2.0, .measurement_time = 3.0};
  EXPECT_DOUBLE_EQ(cost.time(100.0, 10), 50.0 + 30.0);
}

TEST(MultiRobot, Validation) {
  Scene scene;
  const Surveyor surveyor(scene.field, scene.model);
  Rng rng(7);
  EXPECT_THROW(multi_robot_survey(surveyor, scene.lattice, 0, 1, rng),
               CheckFailure);
  EXPECT_THROW(multi_robot_survey(surveyor, scene.lattice, 2, 0, rng),
               CheckFailure);
  EXPECT_THROW(
      multi_robot_survey(surveyor, scene.lattice, 10000, 1, rng),
      CheckFailure);
}

}  // namespace
}  // namespace abp
