#include "robot/adaptive_explorer.h"

#include <gtest/gtest.h>
#include <set>

#include "common/assert.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

struct Scene {
  AABB bounds = AABB::square(60.0);
  BeaconField field{bounds, 20.0};
  PerBeaconNoiseModel model{15.0, 0.1, 5};
  Lattice2D lattice{bounds, 1.0};

  explicit Scene(std::size_t beacons, std::uint64_t seed = 4) {
    Rng rng(seed);
    scatter_uniform(field, beacons, rng);
  }
};

TEST(Explorer, RespectsMeasurementBudget) {
  Scene scene(8);
  const Surveyor surveyor(scene.field, scene.model);
  Rng rng(1);
  const ExplorerConfig config{.coarse_stride = 8, .max_measurements = 300};
  const auto result = explore_adaptive(surveyor, scene.lattice, config, rng);
  EXPECT_LE(result.tour.size(), 300u);
  EXPECT_EQ(result.survey.measured_count(), result.tour.size());
  EXPECT_GT(result.travel_distance, 0.0);
}

TEST(Explorer, CoarsePassAloneWhenBudgetIsZero) {
  Scene scene(8);
  const Surveyor surveyor(scene.field, scene.model);
  Rng rng(2);
  const ExplorerConfig config{.coarse_stride = 10, .max_measurements = 0};
  const auto result = explore_adaptive(surveyor, scene.lattice, config, rng);
  // 61-point lattice at stride 10 → 7×7 coarse grid, no refinement.
  EXPECT_EQ(result.tour.size(), 49u);
}

TEST(Explorer, RefinementTargetsHighErrorNeighbourhoods) {
  // Beacons only in the south half: the north is uncovered (high error).
  Scene scene(0);
  Rng gen(3);
  for (int i = 0; i < 8; ++i) {
    scene.field.add({gen.uniform(0.0, 60.0), gen.uniform(0.0, 25.0)});
  }
  const Surveyor surveyor(scene.field, scene.model);
  Rng rng(3);
  const ExplorerConfig config{.coarse_stride = 10, .max_measurements = 400};
  const auto result = explore_adaptive(surveyor, scene.lattice, config, rng);

  // Refinement measurements (beyond the 49 coarse ones) should be mostly
  // in the badly-localized north half.
  std::size_t north = 0, total_refined = 0;
  for (std::size_t k = 49; k < result.tour.size(); ++k) {
    ++total_refined;
    if (scene.lattice.point(result.tour[k]).y > 30.0) ++north;
  }
  ASSERT_GT(total_refined, 100u);
  EXPECT_GT(static_cast<double>(north) / static_cast<double>(total_refined),
            0.7);
}

TEST(Explorer, NoDuplicateMeasurements) {
  Scene scene(10);
  const Surveyor surveyor(scene.field, scene.model);
  Rng rng(4);
  const ExplorerConfig config{.coarse_stride = 6, .max_measurements = 500};
  const auto result = explore_adaptive(surveyor, scene.lattice, config, rng);
  const std::set<std::size_t> unique(result.tour.begin(), result.tour.end());
  EXPECT_EQ(unique.size(), result.tour.size());
}

TEST(Explorer, BudgetedSurveyBeatsUniformStrideForMax) {
  // The point of adaptive exploration: with the same measurement budget, a
  // survey concentrated on hot areas supports placement at least as well
  // as a uniform coarse survey. Compare the *true* value of the points the
  // two surveys would nominate as worst.
  Scene scene(6, 11);
  ErrorMap truth(scene.lattice);
  truth.compute(scene.field, scene.model);

  const Surveyor surveyor(scene.field, scene.model);
  Rng rng_a(5), rng_b(5);
  const ExplorerConfig config{.coarse_stride = 8, .max_measurements = 500};
  const auto adaptive =
      explore_adaptive(surveyor, scene.lattice, config, rng_a);
  // Uniform comparison survey with a similar budget: stride 3 → 441 points.
  const SurveyData uniform = surveyor.survey(
      scene.lattice, boustrophedon_tour(scene.lattice, 3), rng_b);

  const auto best_true_error = [&](const SurveyData& survey) {
    double best_measured = -1.0;
    std::size_t arg = 0;
    for (std::size_t flat = 0; flat < scene.lattice.size(); ++flat) {
      if (survey.measured(flat) && survey.value(flat) > best_measured) {
        best_measured = survey.value(flat);
        arg = flat;
      }
    }
    return truth.value(arg);
  };
  EXPECT_GE(best_true_error(adaptive.survey) + 1.0,
            best_true_error(uniform));
}

TEST(Explorer, DeterministicGivenSeed) {
  Scene scene(9);
  const Surveyor surveyor(scene.field, scene.model);
  Rng r1(7), r2(7);
  const ExplorerConfig config{.coarse_stride = 8, .max_measurements = 200};
  const auto a = explore_adaptive(surveyor, scene.lattice, config, r1);
  const auto b = explore_adaptive(surveyor, scene.lattice, config, r2);
  EXPECT_EQ(a.tour, b.tour);
  EXPECT_DOUBLE_EQ(a.travel_distance, b.travel_distance);
}

TEST(Explorer, RejectsBadConfig) {
  Scene scene(5);
  const Surveyor surveyor(scene.field, scene.model);
  Rng rng(8);
  EXPECT_THROW(explore_adaptive(surveyor, scene.lattice,
                                {.coarse_stride = 0}, rng),
               CheckFailure);
  EXPECT_THROW(explore_adaptive(surveyor, scene.lattice,
                                {.refine_radius = 0.0}, rng),
               CheckFailure);
}

}  // namespace
}  // namespace abp
