#include "terrain/terrain.h"

#include <gtest/gtest.h>

#include "terrain/heightmap.h"

namespace abp {
namespace {

TEST(FlatTerrain, ConstantElevationAndClearLinks) {
  const FlatTerrain t(AABB::square(100.0), 3.0);
  EXPECT_DOUBLE_EQ(t.elevation({0.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(t.elevation({99.0, 42.0}), 3.0);
  EXPECT_DOUBLE_EQ(t.link_factor({0.0, 0.0}, {100.0, 100.0}), 1.0);
  EXPECT_EQ(t.downhill({50.0, 50.0}), Vec2{});
}

TEST(HillTerrain, PeakIsHighest) {
  const HillTerrain hill(AABB::square(100.0), {50.0, 50.0}, 30.0, 15.0);
  const double peak = hill.elevation({50.0, 50.0});
  EXPECT_DOUBLE_EQ(peak, 30.0);
  EXPECT_LT(hill.elevation({40.0, 50.0}), peak);
  EXPECT_LT(hill.elevation({0.0, 0.0}), 1.0);  // far tail ~ 0
}

TEST(HillTerrain, DownhillPointsAwayFromPeak) {
  const HillTerrain hill(AABB::square(100.0), {50.0, 50.0}, 30.0, 15.0);
  const Vec2 d = hill.downhill({60.0, 50.0});
  EXPECT_GT(d.x, 0.9);  // mostly +x, away from the peak
  EXPECT_NEAR(d.norm(), 1.0, 1e-9);
}

TEST(HillTerrain, DownhillAtPeakIsZero) {
  const HillTerrain hill(AABB::square(100.0), {50.0, 50.0}, 30.0, 15.0);
  EXPECT_LT(hill.downhill({50.0, 50.0}).norm(), 1e-6);
}

TEST(HillTerrain, HillBlocksCrossLinks) {
  const HillTerrain hill(AABB::square(100.0), {50.0, 50.0}, 40.0, 10.0);
  // Link across the hill vs link of equal length in the flat corner.
  const double blocked = hill.link_factor({30.0, 50.0}, {70.0, 50.0});
  const double clear = hill.link_factor({0.0, 0.0}, {40.0, 0.0});
  EXPECT_LT(blocked, clear);
  EXPECT_GT(blocked, 0.0);
  EXPECT_NEAR(clear, 1.0, 1e-6);
}

TEST(HillTerrain, LinkFactorSymmetric) {
  const HillTerrain hill(AABB::square(100.0), {50.0, 50.0}, 40.0, 10.0);
  EXPECT_NEAR(hill.link_factor({20.0, 50.0}, {80.0, 50.0}),
              hill.link_factor({80.0, 50.0}, {20.0, 50.0}), 1e-9);
}

TEST(HillTerrain, ZeroLengthLinkIsClear) {
  const HillTerrain hill(AABB::square(100.0), {50.0, 50.0}, 40.0, 10.0);
  EXPECT_DOUBLE_EQ(hill.link_factor({50.0, 50.0}, {50.0, 50.0}), 1.0);
}

}  // namespace
}  // namespace abp
