#include "terrain/heightmap.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace abp {
namespace {

Grid2D<double> ramp_heights() {
  // Height = x ordinate: a plane rising to the east, 3x3 samples.
  Grid2D<double> h(3, 3, 0.0);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < 3; ++i) {
      h.at(i, j) = static_cast<double>(i) * 10.0;
    }
  }
  return h;
}

TEST(Heightmap, BilinearInterpolatesExactlyOnAPlane) {
  const HeightmapTerrain t(AABB::square(100.0), ramp_heights());
  // The surface is planar, so interpolation is exact everywhere.
  EXPECT_NEAR(t.elevation({0.0, 50.0}), 0.0, 1e-12);
  EXPECT_NEAR(t.elevation({50.0, 0.0}), 10.0, 1e-12);
  EXPECT_NEAR(t.elevation({100.0, 100.0}), 20.0, 1e-12);
  EXPECT_NEAR(t.elevation({25.0, 70.0}), 5.0, 1e-12);
}

TEST(Heightmap, ClampsOutsideQueries) {
  const HeightmapTerrain t(AABB::square(100.0), ramp_heights());
  EXPECT_NEAR(t.elevation({-10.0, 50.0}), 0.0, 1e-12);
  EXPECT_NEAR(t.elevation({500.0, 50.0}), 20.0, 1e-12);
}

TEST(Heightmap, MinMaxTrackSamples) {
  const HeightmapTerrain t(AABB::square(100.0), ramp_heights());
  EXPECT_DOUBLE_EQ(t.min_height(), 0.0);
  EXPECT_DOUBLE_EQ(t.max_height(), 20.0);
}

TEST(Heightmap, DownhillOnRampPointsWest) {
  const HeightmapTerrain t(AABB::square(100.0), ramp_heights());
  const Vec2 d = t.downhill({50.0, 50.0});
  EXPECT_LT(d.x, -0.99);
  EXPECT_NEAR(d.y, 0.0, 1e-6);
}

TEST(Heightmap, RejectsTinyGrids) {
  EXPECT_THROW(HeightmapTerrain(AABB::square(10.0), Grid2D<double>(1, 5)),
               CheckFailure);
}

TEST(Heightmap, UnobstructedLinkOnGentleSlopeIsClear) {
  const HeightmapTerrain t(AABB::square(100.0), ramp_heights());
  // Straight chord over a plane never dips below the surface.
  EXPECT_NEAR(t.link_factor({10.0, 10.0}, {90.0, 90.0}), 1.0, 1e-9);
}

TEST(Fractal, DeterministicInSeed) {
  const auto a = HeightmapTerrain::fractal(AABB::square(100.0), 99, 5);
  const auto b = HeightmapTerrain::fractal(AABB::square(100.0), 99, 5);
  for (double x : {0.0, 13.7, 52.1, 99.0}) {
    for (double y : {5.0, 47.3, 88.8}) {
      EXPECT_DOUBLE_EQ(a.elevation({x, y}), b.elevation({x, y}));
    }
  }
}

TEST(Fractal, DifferentSeedsDiffer) {
  const auto a = HeightmapTerrain::fractal(AABB::square(100.0), 1, 5);
  const auto b = HeightmapTerrain::fractal(AABB::square(100.0), 2, 5);
  bool any_diff = false;
  for (double x : {10.0, 50.0, 90.0}) {
    if (a.elevation({x, x}) != b.elevation({x, x})) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Fractal, AmplitudeBoundsRoughly) {
  // Displacements are bounded by the geometric series of the amplitude:
  // sum a·r^k = a/(1-r). With a=10, r=0.5 heights stay well within ±40.
  const auto t =
      HeightmapTerrain::fractal(AABB::square(100.0), 7, 6, 10.0, 0.5);
  EXPECT_GT(t.min_height(), -40.0);
  EXPECT_LT(t.max_height(), 40.0);
  EXPECT_NE(t.min_height(), t.max_height());  // actually rough
}

TEST(Fractal, RejectsBadParameters) {
  EXPECT_THROW(HeightmapTerrain::fractal(AABB::square(10.0), 1, 0),
               CheckFailure);
  EXPECT_THROW(HeightmapTerrain::fractal(AABB::square(10.0), 1, 5, 10.0, 1.5),
               CheckFailure);
}

TEST(Fractal, RidgeBlocksLineOfSight) {
  // Build an explicit ridge down the middle and confirm attenuation.
  Grid2D<double> h(5, 5, 0.0);
  for (std::size_t j = 0; j < 5; ++j) h.at(2, j) = 50.0;  // tall wall
  const HeightmapTerrain t(AABB::square(100.0), std::move(h));
  const double across = t.link_factor({10.0, 50.0}, {90.0, 50.0});
  const double along = t.link_factor({10.0, 10.0}, {10.0, 90.0});
  EXPECT_LT(across, 0.5);
  EXPECT_NEAR(along, 1.0, 1e-6);
}

}  // namespace
}  // namespace abp
