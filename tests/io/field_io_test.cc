#include "io/field_io.h"

#include <gtest/gtest.h>
#include <sstream>

#include "common/assert.h"
#include "field/generators.h"
#include "radio/noise_model.h"
#include "rng/rng.h"

namespace abp {
namespace {

TEST(FieldIo, RoundTripPreservesEverything) {
  BeaconField field(AABB::square(100.0));
  Rng rng(7);
  scatter_uniform(field, 25, rng);
  field.remove(3);             // create an id gap
  field.set_active(5, false);  // a passive beacon

  std::stringstream stream;
  write_field(stream, field);
  const BeaconField copy = read_field(stream);

  EXPECT_EQ(copy.size(), field.size());
  EXPECT_EQ(copy.active_count(), field.active_count());
  EXPECT_EQ(copy.bounds().lo, field.bounds().lo);
  EXPECT_EQ(copy.bounds().hi, field.bounds().hi);
  for (BeaconId id = 0; id < 25; ++id) {
    const auto a = field.get(id);
    const auto b = copy.get(id);
    ASSERT_EQ(a.has_value(), b.has_value()) << "id " << id;
    if (a) {
      EXPECT_EQ(a->pos, b->pos) << "id " << id;  // bit-exact doubles
      EXPECT_EQ(a->active, b->active) << "id " << id;
    }
  }
}

TEST(FieldIo, RoundTripPreservesIdAllocation) {
  BeaconField field(AABB::square(50.0));
  field.add({1.0, 1.0});
  field.add({2.0, 2.0});
  field.remove(1);

  std::stringstream stream;
  write_field(stream, field);
  BeaconField copy = read_field(stream);
  // The next allocated id must not collide with the removed id 1.
  EXPECT_EQ(copy.add({3.0, 3.0}), 2u);
}

TEST(FieldIo, RoundTripPreservesPropagationLandscape) {
  // Position-keyed noise means a deserialized field sees the identical
  // connectivity world.
  BeaconField field(AABB::square(100.0));
  Rng rng(9);
  scatter_uniform(field, 10, rng);
  std::stringstream stream;
  write_field(stream, field);
  const BeaconField copy = read_field(stream);

  const PerBeaconNoiseModel model(15.0, 0.5, 42);
  for (BeaconId id = 0; id < 10; ++id) {
    const Vec2 probe{37.2, 61.9};
    EXPECT_DOUBLE_EQ(model.effective_range(*field.get(id), probe),
                     model.effective_range(*copy.get(id), probe));
  }
}

TEST(FieldIo, CommentsAndBlankLinesIgnored) {
  std::stringstream stream;
  stream << "# a comment\n\nabp-field 1\n# more\nbounds 0 0 10 10\n"
         << "beacon 0 1.5 2.5 1\n\n# trailing\n";
  const BeaconField field = read_field(stream);
  EXPECT_EQ(field.size(), 1u);
  EXPECT_EQ(field.get(0)->pos, (Vec2{1.5, 2.5}));
}

TEST(FieldIo, RejectsWrongHeader) {
  std::stringstream stream;
  stream << "abp-survey 1\nbounds 0 0 10 10\n";
  EXPECT_THROW(read_field(stream), CheckFailure);
}

TEST(FieldIo, RejectsMalformedBeacon) {
  std::stringstream stream;
  stream << "abp-field 1\nbounds 0 0 10 10\nbeacon 0 oops 2 1\n";
  EXPECT_THROW(read_field(stream), CheckFailure);
}

// Hostile-input hardening: every malformed stream must surface as a clean
// IoError (never a deep invariant trip or a huge allocation). Each case
// below was writable by a hostile or corrupted peer before validation.

void expect_field_io_error(const std::string& body,
                           const std::string& needle) {
  std::istringstream in(body);
  try {
    read_field(in);
    FAIL() << "expected IoError for: " << body;
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

void expect_survey_io_error(const std::string& body,
                            const std::string& needle) {
  std::istringstream in(body);
  try {
    read_survey(in);
    FAIL() << "expected IoError for: " << body;
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

TEST(FieldIo, RejectsTruncatedStream) {
  expect_field_io_error("", "abp-field");
  expect_field_io_error("abp-field 1\n", "bounds");
}

TEST(FieldIo, RejectsNonFiniteBounds) {
  // "inf"/"nan" fail stream extraction outright; either rejection path
  // echoes the offending record in the message.
  expect_field_io_error("abp-field 1\nbounds 0 0 inf 10\n", "bounds");
  expect_field_io_error("abp-field 1\nbounds nan 0 10 10\n", "bounds");
}

TEST(FieldIo, RejectsInvertedBounds) {
  expect_field_io_error("abp-field 1\nbounds 10 0 0 10\n", "inverted");
}

TEST(FieldIo, RejectsTrailingJunkOnRecords) {
  expect_field_io_error("abp-field 1\nbounds 0 0 10 10 extra\n", "bounds");
  expect_field_io_error(
      "abp-field 1\nbounds 0 0 10 10\nbeacon 0 1 2 1 junk\n", "beacon");
}

TEST(FieldIo, RejectsNonFiniteBeaconPosition) {
  expect_field_io_error("abp-field 1\nbounds 0 0 10 10\nbeacon 0 inf 2 1\n",
                        "beacon");
}

TEST(FieldIo, RejectsOutOfBoundsBeacon) {
  expect_field_io_error("abp-field 1\nbounds 0 0 10 10\nbeacon 0 50 2 1\n",
                        "outside bounds");
}

TEST(FieldIo, RejectsDuplicateOrRetrogradeIds) {
  expect_field_io_error(
      "abp-field 1\nbounds 0 0 10 10\nbeacon 1 1 1 1\nbeacon 1 2 2 1\n",
      "out-of-order");
  expect_field_io_error(
      "abp-field 1\nbounds 0 0 10 10\nbeacon 5 1 1 1\nbeacon 2 2 2 1\n",
      "out-of-order");
}

TEST(FieldIo, RejectsHugeBeaconIdBeforeAllocating) {
  // A hostile id would drive a multi-gigabyte slot-vector resize; the
  // ceiling must trip before any allocation happens.
  expect_field_io_error(
      "abp-field 1\nbounds 0 0 10 10\nbeacon 4000000000 1 1 1\n", "ceiling");
  expect_field_io_error(
      "abp-field 1\nbounds 0 0 10 10\nnext-id 4000000000\n", "ceiling");
}

TEST(FieldIo, RejectsBadActiveFlag) {
  expect_field_io_error("abp-field 1\nbounds 0 0 10 10\nbeacon 0 1 1 7\n",
                        "active flag");
}

TEST(FieldIo, RejectsUnknownRecord) {
  expect_field_io_error("abp-field 1\nbounds 0 0 10 10\nwibble 1 2 3\n",
                        "unexpected record");
}

TEST(SurveyIo, RejectsTruncatedStream) {
  expect_survey_io_error("abp-survey 1\n", "bounds");
  expect_survey_io_error("abp-survey 1\nbounds 0 0 10 10\n", "step");
}

TEST(SurveyIo, RejectsBadStep) {
  expect_survey_io_error("abp-survey 1\nbounds 0 0 10 10\nstep 0\n",
                         "positive");
  expect_survey_io_error("abp-survey 1\nbounds 0 0 10 10\nstep -2\n",
                         "positive");
  expect_survey_io_error("abp-survey 1\nbounds 0 0 10 10\nstep inf\n", "step");
}

TEST(SurveyIo, RejectsMemoryExhaustingLattice) {
  // Tiny step over huge bounds would allocate two multi-gigabyte grids;
  // the size cap must trip before the Lattice2D is built.
  expect_survey_io_error(
      "abp-survey 1\nbounds 0 0 1000000 1000000\nstep 0.001\n", "too large");
}

TEST(SurveyIo, RejectsNonFiniteValue) {
  expect_survey_io_error(
      "abp-survey 1\nbounds 0 0 10 10\nstep 1\npoint 0 nan\n", "point");
}

TEST(SurveyIo, RejectsMalformedPointRecord) {
  expect_survey_io_error("abp-survey 1\nbounds 0 0 10 10\nstep 1\npoint 0\n",
                         "point");
  expect_survey_io_error(
      "abp-survey 1\nbounds 0 0 10 10\nstep 1\npoint 0 1.0 junk\n", "point");
}

TEST(SurveyIo, RoundTripPreservesMaskAndValues) {
  const Lattice2D lattice(AABB::square(30.0), 1.5);
  SurveyData survey(lattice);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    survey.record(rng.below(lattice.size()), rng.uniform(0.0, 20.0));
  }
  std::stringstream stream;
  write_survey(stream, survey);
  const SurveyData copy = read_survey(stream);

  EXPECT_EQ(copy.measured_count(), survey.measured_count());
  EXPECT_DOUBLE_EQ(copy.mean(), survey.mean());
  for (std::size_t flat = 0; flat < lattice.size(); ++flat) {
    ASSERT_EQ(copy.measured(flat), survey.measured(flat));
    if (survey.measured(flat)) {
      ASSERT_DOUBLE_EQ(copy.value(flat), survey.value(flat));
    }
  }
}

TEST(SurveyIo, LatticeGeometryRestored) {
  const Lattice2D lattice(AABB({5.0, 5.0}, {25.0, 45.0}), 2.0);
  SurveyData survey(lattice);
  survey.record(0, 1.0);
  std::stringstream stream;
  write_survey(stream, survey);
  const SurveyData copy = read_survey(stream);
  EXPECT_EQ(copy.lattice().nx(), lattice.nx());
  EXPECT_EQ(copy.lattice().ny(), lattice.ny());
  EXPECT_DOUBLE_EQ(copy.lattice().step(), 2.0);
  EXPECT_EQ(copy.lattice().point(0), lattice.point(0));
}

TEST(SurveyIo, RejectsOutOfRangePoint) {
  std::stringstream stream;
  stream << "abp-survey 1\nbounds 0 0 10 10\nstep 1\npoint 999999 1.0\n";
  EXPECT_THROW(read_survey(stream), CheckFailure);
}

TEST(FileIo, SaveLoadThroughFilesystem) {
  BeaconField field(AABB::square(20.0));
  field.add({3.0, 4.0});
  const std::string path = ::testing::TempDir() + "/abp_field_test.txt";
  save_field(path, field);
  const BeaconField copy = load_field(path);
  EXPECT_EQ(copy.size(), 1u);
  EXPECT_EQ(copy.get(0)->pos, (Vec2{3.0, 4.0}));
}

TEST(FileIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_field("/nonexistent/abp/field.txt"), CheckFailure);
}

}  // namespace
}  // namespace abp
