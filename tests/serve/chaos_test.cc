/// Chaos suite: the serving stack under deterministic fault injection.
///
/// Every test drives seeded, scriptable faults (`FaultTransport`) through
/// the real wire codec against a real `Server` and asserts the resilience
/// contract from three angles:
///  * liveness — the server answers or sheds every submission and never
///    deadlocks; after drain, queue depth and in-flight are both zero;
///  * accounting — the admission identity holds exactly:
///    submitted == completed + shed-overloaded + shed-unavailable +
///    shed-deadline;
///  * client discipline — the retrying client converges through transient
///    faults, never retries terminal statuses, and respects its deadline
///    budget on a virtual clock (no test here sleeps real time except the
///    threaded stress and the TCP slow-loris cases).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/field_io.h"
#include "serve/client.h"
#include "serve/fault_transport.h"
#include "serve/server.h"
#include "serve/server_transport.h"
#include "serve/tcp_transport.h"
#include "serve/transport.h"

namespace abp::serve {
namespace {

BeaconField make_field() {
  BeaconField field(AABB({0, 0}, {60, 60}));
  field.add({10, 10});
  field.add({30, 10});
  field.add({10, 30});
  return field;
}

ServiceConfig test_config() {
  ServiceConfig config;
  config.lattice_step = 2.0;
  return config;
}

Request localize_request(std::uint64_t seq, std::uint32_t deadline_ms = 0) {
  Request request;
  request.seq = seq;
  request.endpoint = Endpoint::kLocalize;
  request.points = {{12, 12}};
  request.deadline_ms = deadline_ms;
  return request;
}

/// Manual-mode server on a manual clock: every exchange and every
/// millisecond is under test control.
struct ManualRig {
  ManualClock clock;
  LocalizationService service{test_config()};
  Server server;

  explicit ManualRig(std::size_t max_queue = 0)
      : server(service, options(max_queue, clock)) {
    service.add_field("default", make_field());
  }

  static Server::Options options(std::size_t max_queue, ManualClock& clock) {
    Server::Options options;
    options.workers = 0;
    options.max_batch = 8;
    options.max_queue = max_queue;
    options.clock_ms = clock.fn();
    return options;
  }

  ServiceMetrics& metrics() { return service.metrics(); }

  /// The liveness + accounting contract every chaos scenario must satisfy
  /// once the dust settles.
  void expect_reconciled(const char* context) {
    EXPECT_EQ(server.queue_depth(), 0u) << context;
    EXPECT_EQ(server.in_flight(), 0u) << context;
    EXPECT_EQ(metrics().submitted(),
              metrics().completed() + metrics().shed_total())
        << context;
  }
};

RetryingClient make_client(FaultTransport& transport, ManualClock& clock,
                           RetryPolicy policy) {
  RetryingClient client([&transport] { return borrow_transport(transport); },
                        policy);
  client.set_clock(clock.fn());
  client.set_sleeper([&clock](double ms) { clock.advance(ms); });
  return client;
}

TEST(Chaos, EveryFaultClassDrainsAndReconciles) {
  for (const FaultKind kind : kAllFaultKinds) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SCOPED_TRACE(std::string(fault_kind_name(kind)) + " seed " +
                   std::to_string(seed));
      ManualRig rig;
      FaultTransport::Options fault_options;
      fault_options.script =
          FaultScript({{kind, 60.0}}, /*cycle=*/true);  // fault every time
      fault_options.seed = seed;
      fault_options.clock = &rig.clock;
      FaultTransport transport(rig.server, fault_options);

      RetryPolicy policy;
      policy.max_attempts = 4;
      policy.base_backoff_ms = 5.0;
      policy.seed = seed;
      RetryingClient client = make_client(transport, rig.clock, policy);

      for (std::uint64_t seq = 1; seq <= 4; ++seq) {
        const CallResult result =
            client.call(localize_request(seq, /*deadline_ms=*/30));
        // The client must terminate cleanly: either a final response or a
        // transport diagnostic, never an exception or a hang.
        EXPECT_LE(result.attempts, policy.max_attempts);
        EXPECT_GE(result.attempts, 1u);
        if (result.ok) {
          EXPECT_NE(result.response.status, Status::kUnavailable);
        } else {
          EXPECT_FALSE(result.error.empty());
        }
        if (kind == FaultKind::kNone) {
          ASSERT_TRUE(result.ok);
          EXPECT_EQ(result.response.status, Status::kOk);
          EXPECT_EQ(result.attempts, 1u);
        }
        if (kind == FaultKind::kCorruptRequest) {
          // Whatever the flipped bit produced — a still-valid request, a
          // framing error, a malformed payload, or an unknown deployment —
          // it is answered terminally on the first try, never retried.
          ASSERT_TRUE(result.ok);
          EXPECT_EQ(result.attempts, 1u);
          EXPECT_FALSE(status_retryable(result.response.status))
              << status_name(result.response.status);
        }
        if (kind == FaultKind::kStallBeforeExecute) {
          // 60 ms stall against a 30 ms deadline: every attempt is shed
          // before execution, and the client fails cleanly with the shed
          // status after exhausting its retries.
          ASSERT_TRUE(result.ok);
          EXPECT_EQ(result.response.status, Status::kDeadlineExceeded);
          EXPECT_EQ(result.attempts, policy.max_attempts);
        }
      }
      rig.server.pump();  // anything still queued must drain
      rig.expect_reconciled(fault_kind_name(kind));
      if (kind == FaultKind::kStallBeforeExecute) {
        EXPECT_EQ(rig.metrics().completed(), 0u);
        EXPECT_EQ(rig.metrics().shed(Status::kDeadlineExceeded), 16u);
      }
    }
  }
}

TEST(Chaos, TransientConnectionFaultsConvergeOnRetry) {
  // One fault then a clean exchange, cycling: the second attempt always
  // lands, so the client must converge with exactly two attempts.
  const FaultKind transient[] = {
      FaultKind::kResetBeforeSend, FaultKind::kResetAfterSend,
      FaultKind::kTruncateRequest, FaultKind::kTruncateResponse,
      FaultKind::kSlowLorisRequest};
  for (const FaultKind kind : transient) {
    SCOPED_TRACE(fault_kind_name(kind));
    ManualRig rig;
    FaultTransport::Options fault_options;
    fault_options.script = FaultScript({{kind, 5.0}, {FaultKind::kNone, 0.0}});
    fault_options.clock = &rig.clock;
    FaultTransport transport(rig.server, fault_options);

    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.base_backoff_ms = 5.0;
    RetryingClient client = make_client(transport, rig.clock, policy);

    for (std::uint64_t seq = 1; seq <= 3; ++seq) {
      const CallResult result = client.call(localize_request(seq));
      ASSERT_TRUE(result.ok) << result.error;
      EXPECT_EQ(result.response.status, Status::kOk);
      EXPECT_EQ(result.response.seq, seq);
      EXPECT_EQ(result.attempts, 2u);
      EXPECT_EQ(result.transport_errors, 1u);
      EXPECT_GT(result.backoff_ms, 0.0);
    }
    rig.expect_reconciled(fault_kind_name(kind));
  }
}

TEST(Chaos, DeadlineExpiredInQueueIsShedNotComputed) {
  ManualRig rig;
  std::vector<Response> replies(3);
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    rig.server.submit(
        format_request(localize_request(seq + 1, /*deadline_ms=*/50)),
        [&replies, seq](std::string payload) {
          replies[seq] = *parse_response(payload);
        });
  }
  EXPECT_EQ(rig.server.queue_depth(), 3u);
  rig.clock.advance(100.0);  // all three age past their deadline in-queue
  rig.server.pump();
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    EXPECT_EQ(replies[seq].status, Status::kDeadlineExceeded);
    EXPECT_EQ(replies[seq].seq, seq + 1);
  }
  // Shed before execution: no batch ever ran, nothing was computed.
  EXPECT_EQ(rig.metrics().batches(), 0u);
  EXPECT_EQ(rig.metrics().completed(), 0u);
  EXPECT_EQ(rig.metrics().shed(Status::kDeadlineExceeded), 3u);
  rig.expect_reconciled("deadline shed");
}

TEST(Chaos, ExpiredAndLiveRequestsCoalesceCorrectly) {
  ManualRig rig;
  std::vector<Response> replies(2);
  // Request 1 (20 ms deadline) expires while request 2 (no deadline) stays
  // live; both coalesce into one take_batch and must split shed/computed.
  rig.server.submit(format_request(localize_request(1, 20)),
                    [&replies](std::string payload) {
                      replies[0] = *parse_response(payload);
                    });
  rig.server.submit(format_request(localize_request(2)),
                    [&replies](std::string payload) {
                      replies[1] = *parse_response(payload);
                    });
  rig.clock.advance(30.0);
  rig.server.pump();
  EXPECT_EQ(replies[0].status, Status::kDeadlineExceeded);
  EXPECT_EQ(replies[1].status, Status::kOk);
  EXPECT_EQ(rig.metrics().completed(), 1u);
  EXPECT_EQ(rig.metrics().shed(Status::kDeadlineExceeded), 1u);
  EXPECT_EQ(rig.metrics().batches(), 1u);
  rig.expect_reconciled("mixed batch");
}

TEST(Chaos, QueueDepthAdmissionShedsBeforeEnqueue) {
  ManualRig rig(/*max_queue=*/2);
  std::vector<Status> statuses(5, Status::kInternal);
  std::vector<bool> answered(5, false);
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    rig.server.submit(format_request(localize_request(seq + 1)),
                      [&statuses, &answered, seq](std::string payload) {
                        statuses[seq] = parse_response(payload)->status;
                        answered[seq] = true;
                      });
  }
  // Rejections are answered synchronously, before any pump.
  EXPECT_FALSE(answered[0]);
  EXPECT_FALSE(answered[1]);
  for (std::size_t i = 2; i < 5; ++i) {
    ASSERT_TRUE(answered[i]);
    EXPECT_EQ(statuses[i], Status::kOverloaded);
  }
  rig.server.pump();
  EXPECT_EQ(statuses[0], Status::kOk);
  EXPECT_EQ(statuses[1], Status::kOk);
  EXPECT_EQ(rig.metrics().completed(), 2u);
  EXPECT_EQ(rig.metrics().shed(Status::kOverloaded), 3u);
  rig.expect_reconciled("queue admission");
}

TEST(Chaos, ClientConvergesThroughOverload) {
  ManualRig rig(/*max_queue=*/1);
  // A filler request parks in the queue, so the client's first attempt is
  // shed `overloaded`; the loopback pump that answers the attempt also
  // drains the filler, so the retry is admitted and succeeds.
  bool filler_answered = false;
  rig.server.submit(format_request(localize_request(99)),
                    [&filler_answered](std::string) {
                      filler_answered = true;
                    });
  LoopbackTransport loopback(rig.server);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_ms = 5.0;
  RetryingClient client([&loopback] { return borrow_transport(loopback); },
                        policy);
  client.set_clock(rig.clock.fn());
  client.set_sleeper([&rig](double ms) { rig.clock.advance(ms); });

  const CallResult result = client.call(localize_request(1));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.response.status, Status::kOk);
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_TRUE(filler_answered);
  EXPECT_EQ(rig.metrics().shed(Status::kOverloaded), 1u);
  rig.expect_reconciled("overload retry");
}

TEST(Chaos, ClientNeverRetriesTerminalStatuses) {
  ManualRig rig;
  LoopbackTransport loopback(rig.server);
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryingClient client([&loopback] { return borrow_transport(loopback); },
                        policy);
  client.set_clock(rig.clock.fn());
  client.set_sleeper([&rig](double ms) { rig.clock.advance(ms); });

  Request missing = localize_request(7);
  missing.field = "no-such-deployment";
  const CallResult result = client.call(missing);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.response.status, Status::kNotFound);
  EXPECT_EQ(result.attempts, 1u);  // terminal: one attempt, zero backoff
  EXPECT_EQ(result.backoff_ms, 0.0);
  rig.expect_reconciled("terminal status");
}

TEST(Chaos, ClientRetriesVersionMismatch) {
  // Regression guard: `version-mismatch` is retryable. In the cluster the
  // router repairs a stale replica in-band and retries, so a client that
  // treated the status as terminal would surface transient staleness as a
  // hard error. This rig never repairs, so the client must spend its full
  // attempt budget before reporting the mismatch.
  ManualRig rig;
  LoopbackTransport loopback(rig.server);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 5.0;
  RetryingClient client([&loopback] { return borrow_transport(loopback); },
                        policy);
  client.set_clock(rig.clock.fn());
  client.set_sleeper([&rig](double ms) { rig.clock.advance(ms); });

  ASSERT_TRUE(status_retryable(Status::kVersionMismatch));
  Request stale = localize_request(21);
  stale.field = "default";
  stale.version = 2;  // the rig's deployment is unversioned: forever behind
  const CallResult result = client.call(stale);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.response.status, Status::kVersionMismatch);
  EXPECT_EQ(result.attempts, 3u) << "version-mismatch must be retried";
  EXPECT_GT(result.backoff_ms, 0.0);
  rig.expect_reconciled("version-mismatch retries");
}

TEST(Chaos, ClientDeadlineBudgetBoundsTheWholeCall) {
  ManualRig rig;
  FaultTransport::Options fault_options;
  // Every attempt stalls 30 ms in-queue against the request's 20 ms
  // deadline, so every attempt is shed and the budget, not max_attempts,
  // ends the call.
  fault_options.script =
      FaultScript({{FaultKind::kStallBeforeExecute, 30.0}});
  fault_options.clock = &rig.clock;
  FaultTransport transport(rig.server, fault_options);

  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.base_backoff_ms = 10.0;
  policy.deadline_budget_ms = 100.0;
  RetryingClient client = make_client(transport, rig.clock, policy);

  const double start = rig.clock.now_ms;
  const CallResult result = client.call(localize_request(1, /*deadline_ms=*/20));
  const double elapsed = rig.clock.now_ms - start;
  // Converged-or-failed *within* the budget (plus at most one in-flight
  // stall that straddles the boundary).
  EXPECT_LE(elapsed, policy.deadline_budget_ms + 30.0 + 1.0);
  EXPECT_LT(result.attempts, policy.max_attempts);
  ASSERT_TRUE(result.ok);  // fails cleanly with the last shed response
  EXPECT_EQ(result.response.status, Status::kDeadlineExceeded);
  rig.expect_reconciled("client budget");
}

TEST(Chaos, ThreadedServerSurvivesConcurrentFaultyClients) {
  // Real threads, real (tiny) sleeps: the TSan job runs this to hunt
  // races/deadlocks across submit/shed/drain under every fault class.
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = 2;
  options.max_batch = 4;
  options.max_queue = 16;
  Server server(service, options);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kCallsPerThread = 12;
  std::atomic<std::size_t> terminated{0};
  {
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < kThreads; ++t) {
      clients.emplace_back([&server, &terminated, t] {
        FaultTransport::Options fault_options;
        fault_options.script = FaultScript({
            {FaultKind::kNone, 0.0},
            {FaultKind::kResetBeforeSend, 0.0},
            {FaultKind::kCorruptRequest, 0.0},
            {FaultKind::kResetAfterSend, 0.0},
            {FaultKind::kTruncateResponse, 0.0},
            {FaultKind::kStallBeforeExecute, 1.0},
        });
        fault_options.seed = 1000 + t;
        FaultTransport transport(server, fault_options);
        RetryPolicy policy;
        policy.max_attempts = 3;
        policy.base_backoff_ms = 0.1;
        policy.max_backoff_ms = 0.5;
        policy.seed = t;
        RetryingClient client(
            [&transport] { return borrow_transport(transport); }, policy);
        for (std::size_t i = 0; i < kCallsPerThread; ++i) {
          const CallResult result =
              client.call(localize_request(t * 1000 + i));
          (void)result;  // any clean termination counts
          terminated.fetch_add(1);
        }
      });
    }
    for (std::thread& thread : clients) thread.join();
  }
  server.shutdown();
  EXPECT_EQ(terminated.load(), kThreads * kCallsPerThread);
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_EQ(server.in_flight(), 0u);
  EXPECT_EQ(service.metrics().submitted(),
            service.metrics().completed() + service.metrics().shed_total());
}

// ---- server-side retry-after hint --------------------------------------

TEST(Chaos, ClientHonorsServerRetryAfterHint) {
  // A loaded server spreads its retry storm by attaching `retry-after` to
  // every overloaded shed; the client must sleep exactly the hinted
  // duration instead of its jittered local backoff.
  ManualClock clock;
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = 0;
  options.max_batch = 8;
  options.max_queue = 1;
  options.retry_after_hint_ms = 40;
  options.clock_ms = clock.fn();
  Server server(service, options);

  // Park a filler so the first attempt is shed; the pump that answers the
  // attempt drains the filler, so the hinted retry is admitted.
  server.submit(format_request(localize_request(99)), [](std::string) {});
  LoopbackTransport loopback(server);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_ms = 5.0;
  RetryingClient client([&loopback] { return borrow_transport(loopback); },
                        policy);
  client.set_clock(clock.fn());
  client.set_sleeper([&clock](double ms) { clock.advance(ms); });

  const CallResult result = client.call(localize_request(1));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.response.status, Status::kOk);
  EXPECT_EQ(result.attempts, 2u);
  // Exactly the hint — any jitter from the local schedule would land in
  // [5, 15) for a first retry, never precisely 40.
  EXPECT_DOUBLE_EQ(result.backoff_ms, 40.0);
}

// ---- exactly-once writes under duplication and retry -------------------

TEST(Chaos, FaultKindTableIsComplete) {
  // Compile-time: the static_assert in fault_transport.h pins the table
  // size to the enumerator count. Runtime: order and names must agree too,
  // so a new kind spliced into the middle cannot silently shift the table.
  std::size_t index = 0;
  for (const FaultKind kind : kAllFaultKinds) {
    EXPECT_EQ(static_cast<std::size_t>(kind), index)
        << "kAllFaultKinds order drifted from the enum at index " << index;
    EXPECT_STRNE(fault_kind_name(kind), "unknown")
        << "enumerator " << index << " has no name";
    ++index;
  }
}

TEST(Chaos, RetryStormScriptIsSeededAndDuplicateHeavy) {
  auto draw = [](std::size_t steps, std::uint64_t seed) {
    FaultScript script = make_retry_storm_script(steps, seed, /*cycle=*/false);
    std::vector<FaultKind> kinds;
    for (std::size_t i = 0; i < steps; ++i) kinds.push_back(script.next().kind);
    return kinds;
  };
  const auto a = draw(64, 7);
  EXPECT_EQ(a, draw(64, 7)) << "same (steps, seed) must replay identically";
  EXPECT_NE(a, draw(64, 8));
  // The mix must actually exercise the dedup layer: duplicates and both
  // reset flavours all present in a modest draw.
  std::size_t duplicates = 0, resets = 0;
  for (const FaultKind kind : a) {
    duplicates += kind == FaultKind::kDuplicateRequest;
    resets += kind == FaultKind::kResetBeforeSend ||
              kind == FaultKind::kResetAfterSend;
  }
  EXPECT_GT(duplicates, 0u);
  EXPECT_GT(resets, 0u);
}

Request add_beacon(std::uint64_t seq) {
  Request add;
  add.seq = seq;
  add.endpoint = Endpoint::kAddBeacon;
  add.field = "default";
  add.points = {{50, 50}};
  return add;
}

std::size_t beacon_count(LocalizationService& service) {
  Request snapshot;
  snapshot.endpoint = Endpoint::kSnapshot;
  snapshot.field = "default";
  std::istringstream in(service.handle(snapshot).text);
  return read_field(in).size();
}

TEST(Chaos, DuplicateDeliveredWriteIsSuppressed) {
  // The network retransmits the add-beacon frame: the server sees it twice,
  // answers both, and deploys exactly one beacon — the duplicate collects
  // the original ack.
  ManualRig rig;
  FaultTransport::Options fault_options;
  fault_options.script = FaultScript({{FaultKind::kDuplicateRequest, 0.0}});
  fault_options.clock = &rig.clock;
  FaultTransport transport(rig.server, fault_options);

  Request add = add_beacon(1);
  add.request_id = 0xD1CEull;
  const Response response = transport.roundtrip(add);
  ASSERT_EQ(response.status, Status::kOk) << response.message;
  ASSERT_EQ(response.beacon_ids.size(), 1u);
  EXPECT_EQ(beacon_count(rig.service), make_field().size() + 1);
  // Without an id the duplicate really does append twice — that is the
  // pre-dedup behaviour id-free clients keep.
  Request bare = add_beacon(2);
  ASSERT_EQ(transport.roundtrip(bare).status, Status::kOk);
  EXPECT_EQ(beacon_count(rig.service), make_field().size() + 3);
  rig.expect_reconciled("duplicate-request");
}

TEST(Chaos, ClientNeverRotatesTheRequestIdAcrossRetries) {
  // Regression: minting a fresh id per *attempt* (instead of per logical
  // write) would turn every retry after a lost ack into a double deploy.
  // Capture what actually reaches the server, fault the first two attempts.
  ManualRig rig;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> seen;
  auto exchange = [&rig, &seen](std::string frame) {
    FrameDecoder decoder;
    decoder.feed(frame);
    std::optional<std::string> payload = decoder.next();
    EXPECT_TRUE(payload.has_value());
    const std::optional<Request> request = parse_request(*payload);
    EXPECT_TRUE(request.has_value());
    seen.emplace_back(request->request_id, request->attempt);
    std::string out;
    rig.server.submit(std::move(*payload),
                      [&out](std::string reply) { out = std::move(reply); });
    rig.server.pump();
    return encode_frame(out);
  };
  FaultTransport::Options fault_options;
  fault_options.script = FaultScript({{FaultKind::kResetAfterSend, 0.0},
                                      {FaultKind::kResetBeforeSend, 0.0},
                                      {FaultKind::kNone, 0.0}});
  fault_options.clock = &rig.clock;
  FaultTransport transport(exchange, fault_options);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_ms = 5.0;
  RetryingClient client = make_client(transport, rig.clock, policy);
  client.set_request_id_source([] { return 0xABCDull; });

  const CallResult result = client.call(add_beacon(1));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.response.status, Status::kOk);
  EXPECT_EQ(result.attempts, 3u);
  // Attempt 1 executed (ack lost), attempt 2 never reached the wire,
  // attempt 3 collected the original ack via server-side dedup.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, 0xABCDull);
  EXPECT_EQ(seen[1].first, 0xABCDull) << "the id must never rotate";
  EXPECT_EQ(seen[0].second, 0u);
  EXPECT_EQ(seen[1].second, 2u) << "the attempt counter marks the retry";
  EXPECT_EQ(beacon_count(rig.service), make_field().size() + 1)
      << "exactly one beacon across the whole retried call";
}

TEST(Chaos, ClientMintsOneIdPerLogicalWrite) {
  ManualRig rig;
  std::vector<std::uint64_t> ids;
  auto exchange = [&rig, &ids](std::string frame) {
    FrameDecoder decoder;
    decoder.feed(frame);
    std::optional<std::string> payload = decoder.next();
    const std::optional<Request> request = parse_request(*payload);
    ids.push_back(request->request_id);
    std::string out;
    rig.server.submit(std::move(*payload),
                      [&out](std::string reply) { out = std::move(reply); });
    rig.server.pump();
    return encode_frame(out);
  };
  FaultTransport::Options fault_options;  // no faults
  fault_options.clock = &rig.clock;
  FaultTransport transport(exchange, fault_options);
  RetryingClient client(
      [&transport] { return borrow_transport(transport); }, RetryPolicy{});

  // Two logical writes: distinct nonzero minted ids.
  ASSERT_TRUE(client.call(add_beacon(1)).ok);
  ASSERT_TRUE(client.call(add_beacon(2)).ok);
  // A caller-supplied id is preserved verbatim; reads are never stamped.
  Request supplied = add_beacon(3);
  supplied.request_id = 424242;
  ASSERT_TRUE(client.call(supplied).ok);
  Request read = localize_request(4);
  read.field = "default";
  ASSERT_TRUE(client.call(read).ok);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_NE(ids[0], 0u);
  EXPECT_NE(ids[1], 0u);
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_EQ(ids[2], 424242u);
  EXPECT_EQ(ids[3], 0u);
}

// ---- faults over a real socket pair, both server transports ------------

const TransportKind kBothKinds[] = {TransportKind::kThreaded,
                                    TransportKind::kEpoll};

std::size_t open_fd_count() {
  return static_cast<std::size_t>(std::distance(
      std::filesystem::directory_iterator("/proc/self/fd"),
      std::filesystem::directory_iterator()));
}

/// Poll (bounded) until the transport's connection gauge reaches zero.
bool wait_for_no_connections(const ServerTransport& transport) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (transport.open_connections() == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return transport.open_connections() == 0;
}

TEST(ChaosTcp, PipelinedBurstBeyondInflightCapIsShedInOrder) {
  for (const TransportKind kind : kBothKinds) {
    SCOPED_TRACE(transport_kind_name(kind));
    LocalizationService service(test_config());
    service.add_field("default", make_field());
    Server server(service);
    TransportOptions options;
    options.max_inflight = 2;
    const auto transport = make_server_transport(kind, server, options);
    transport->start();

    TcpClientTransport client("127.0.0.1", transport->port(), 5.0);
    // One write carrying 5 frames: at most 2 may be in flight, the rest of
    // the burst is shed `overloaded` before touching the queue.
    std::string burst;
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
      burst += encode_frame(format_request(localize_request(seq)));
    }
    client.send_raw(burst);
    std::size_t ok = 0;
    std::size_t overloaded = 0;
    for (int i = 0; i < 5; ++i) {
      const std::optional<Response> response =
          parse_response(client.read_payload());
      ASSERT_TRUE(response.has_value());
      if (response->status == Status::kOk) ++ok;
      if (response->status == Status::kOverloaded) ++overloaded;
    }
    // Every frame is answered with ok or overloaded — never dropped. (The
    // exact split depends on how the kernel chunks the burst; a single
    // segment yields 2 ok + 3 overloaded.)
    EXPECT_EQ(ok + overloaded, 5u);
    EXPECT_GE(ok, 2u);
    // The connection survives shedding: a follow-up request succeeds.
    const Response after = client.roundtrip(localize_request(9));
    EXPECT_EQ(after.status, Status::kOk);
    transport->stop();
    server.shutdown();
    EXPECT_EQ(service.metrics().submitted(),
              service.metrics().completed() + service.metrics().shed_total());
  }
}

TEST(ChaosTcp, SlowLorisPartialFrameTimesOutWithoutWedgingTheServer) {
  for (const TransportKind kind : kBothKinds) {
    SCOPED_TRACE(transport_kind_name(kind));
    LocalizationService service(test_config());
    service.add_field("default", make_field());
    Server server(service);
    TransportOptions options;
    options.read_timeout_s = 0.15;
    const auto transport = make_server_transport(kind, server, options);
    transport->start();

    // The slow loris delivers half a frame and then goes quiet.
    TcpClientTransport loris("127.0.0.1", transport->port(), 5.0);
    const std::string frame =
        encode_frame(format_request(localize_request(1)));
    loris.send_raw(frame.substr(0, frame.size() / 2));

    // A well-behaved client is served while the loris is still connected...
    TcpClientTransport good("127.0.0.1", transport->port(), 5.0);
    EXPECT_EQ(good.roundtrip(localize_request(2)).status, Status::kOk);

    // ...and the loris is dropped once its read timeout expires, freeing
    // the connection slot without wedging anything.
    bool dropped = false;
    for (int i = 0; i < 40 && !dropped; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      dropped = loris.closed_by_peer();
    }
    EXPECT_TRUE(dropped);
    // A fresh connection (the idle timeout has dropped `good` too by now)
    // is served normally: no slot or thread was wedged by the loris.
    TcpClientTransport fresh("127.0.0.1", transport->port(), 5.0);
    EXPECT_EQ(fresh.roundtrip(localize_request(3)).status, Status::kOk);
    transport->stop();
    server.shutdown();
  }
}

TEST(ChaosTcp, FaultyClientFleetLeavesNoFdOrSlotLeak) {
  // Every socket-level misbehavior in one fleet, against both transports:
  // corrupt framing, a half-frame followed by an abrupt close, a pipelined
  // burst past the in-flight cap, an idle connection that must time out,
  // and a well-behaved pipeliner. Afterwards the transport must report
  // zero open connections, the process must hold no extra fds, and the
  // admission identity must reconcile exactly.
  for (const TransportKind kind : kBothKinds) {
    SCOPED_TRACE(transport_kind_name(kind));
    LocalizationService service(test_config());
    service.add_field("default", make_field());
    Server::Options server_options;
    server_options.workers = 2;
    server_options.max_batch = 8;
    Server server(service, server_options);
    TransportOptions options;
    options.max_inflight = 2;
    options.read_timeout_s = 0.2;
    options.event_shards = 2;
    const auto transport = make_server_transport(kind, server, options);
    transport->start();
    const std::size_t baseline_fds = open_fd_count();

    {
      // (a) corrupt framing: answered bad-request, then server-closed.
      TcpClientTransport garbage("127.0.0.1", transport->port(), 5.0);
      garbage.send_raw("%%% definitely not a frame %%%\n");
      const auto diagnostic = parse_response(garbage.read_payload());
      ASSERT_TRUE(diagnostic.has_value());
      EXPECT_EQ(diagnostic->status, Status::kBadRequest);

      // (b) half a frame, then the client vanishes mid-request.
      TcpClientTransport quitter("127.0.0.1", transport->port(), 5.0);
      const std::string frame =
          encode_frame(format_request(localize_request(1)));
      quitter.send_raw(frame.substr(0, frame.size() / 2));

      // (c) burst past the in-flight cap; read every answer, then leave.
      TcpClientTransport burster("127.0.0.1", transport->port(), 5.0);
      std::string burst;
      for (std::uint64_t seq = 1; seq <= 5; ++seq) {
        burst += encode_frame(format_request(localize_request(seq)));
      }
      burster.send_raw(burst);
      for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(parse_response(burster.read_payload()).has_value());
      }

      // (d) connects and never says anything: the read timeout reaps it.
      TcpClientTransport idler("127.0.0.1", transport->port(), 5.0);

      // (e) a well-behaved pipelined client sees clean service throughout.
      TcpClientTransport good("127.0.0.1", transport->port(), 5.0);
      for (std::uint64_t seq = 1; seq <= 4; ++seq) {
        good.send_async(localize_request(seq), [](std::string) {});
      }
      good.flush();
      EXPECT_EQ(good.roundtrip(localize_request(9)).status, Status::kOk);
    }  // all five client sockets close here

    EXPECT_TRUE(wait_for_no_connections(*transport))
        << "open=" << transport->open_connections();
    EXPECT_EQ(open_fd_count(), baseline_fds);
    EXPECT_EQ(transport->connections_accepted(), 5u);
    transport->stop();
    EXPECT_EQ(transport->open_connections(), 0u);
    server.shutdown();
    EXPECT_EQ(service.metrics().submitted(),
              service.metrics().completed() + service.metrics().shed_total());
  }
}

}  // namespace
}  // namespace abp::serve
