#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace abp::serve {
namespace {

Request full_request() {
  Request request;
  request.seq = 42;
  request.endpoint = Endpoint::kLocalize;
  request.field = "west-ridge_2";
  request.points = {{0.1234567890123456, 99.9}, {-3.5, 7.0}};
  return request;
}

TEST(Protocol, RequestRoundTripExact) {
  const Request request = full_request();
  std::string error;
  const auto copy = parse_request(format_request(request), &error);
  ASSERT_TRUE(copy.has_value()) << error;
  EXPECT_EQ(*copy, request);
}

TEST(Protocol, RequestRoundTripAllEndpoints) {
  for (const Endpoint endpoint : kAllEndpoints) {
    Request request;
    request.seq = 7;
    request.endpoint = endpoint;
    request.algorithm = endpoint == Endpoint::kPropose ? "max" : "";
    request.count = endpoint == Endpoint::kPropose ? 3 : 1;
    const auto copy = parse_request(format_request(request));
    ASSERT_TRUE(copy.has_value()) << endpoint_name(endpoint);
    EXPECT_EQ(*copy, request) << endpoint_name(endpoint);
  }
}

TEST(Protocol, ResponseRoundTripExact) {
  Response response;
  response.seq = 91;
  response.status = Status::kOk;
  response.estimates = {{{1.5, 2.5}, 4}, {{-0.25, 1e-17}, 0}};
  response.errors = {0.0, 12.75};
  response.positions = {{33.3, 44.4}};
  response.beacon_ids = {17, 2};
  response.text = "abp-field 1\nbounds 0 0 10 10\nwith\nnewlines\n";
  std::string error;
  const auto copy = parse_response(format_response(response), &error);
  ASSERT_TRUE(copy.has_value()) << error;
  EXPECT_EQ(*copy, response);
}

TEST(Protocol, OverloadedResponseRoundTripsRetryAfterHint) {
  Response response;
  response.seq = 11;
  response.status = Status::kOverloaded;
  response.message = "queue full";
  response.retry_after_ms = 250;
  const auto copy = parse_response(format_response(response));
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(*copy, response);
  EXPECT_EQ(copy->retry_after_ms, 250u);

  // A zero hint is omitted from the wire and parses back to zero.
  response.retry_after_ms = 0;
  const std::string wire = format_response(response);
  EXPECT_EQ(wire.find("retry-after"), std::string::npos);
  const auto no_hint = parse_response(wire);
  ASSERT_TRUE(no_hint.has_value());
  EXPECT_EQ(no_hint->retry_after_ms, 0u);
}

TEST(Protocol, ErrorResponseCarriesMessage) {
  Response response;
  response.seq = 3;
  response.status = Status::kNotFound;
  response.message = "unknown field: nowhere";
  const auto copy = parse_response(format_response(response));
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(copy->status, Status::kNotFound);
  EXPECT_EQ(copy->message, "unknown field: nowhere");
}

TEST(Protocol, NewlinesInMessageAreFlattened) {
  Response response;
  response.message = "line1\nline2";
  response.status = Status::kInternal;
  const auto copy = parse_response(format_response(response));
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(copy->message, "line1 line2");
}

TEST(Protocol, ParseRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(parse_request("", &error).has_value());
  EXPECT_FALSE(parse_request("hello world\n", &error).has_value());
  EXPECT_FALSE(parse_request("abp-request 2 1 localize\n", &error));
  EXPECT_FALSE(parse_request("abp-request 1 x localize\n", &error));
  EXPECT_FALSE(parse_request("abp-request 1 1 teleport\n", &error));
  EXPECT_FALSE(parse_response("abp-request 1 1 localize\n", &error));
}

TEST(Protocol, ParseRejectsMalformedRecords) {
  const std::string head = "abp-request 1 1 localize\n";
  EXPECT_FALSE(parse_request(head + "point 1\n").has_value());
  EXPECT_FALSE(parse_request(head + "point a b\n").has_value());
  EXPECT_FALSE(parse_request(head + "point 1 2 3\n").has_value());
  EXPECT_FALSE(parse_request(head + "point inf 2\n").has_value());
  EXPECT_FALSE(parse_request(head + "point nan 2\n").has_value());
  EXPECT_FALSE(parse_request(head + "field bad name\n").has_value());
  EXPECT_FALSE(parse_request(head + "field ..$$..\n").has_value());
  EXPECT_FALSE(parse_request(head + "count 0\n").has_value());
  EXPECT_FALSE(parse_request(head + "count -3\n").has_value());
  EXPECT_FALSE(parse_request(head + "wibble 1\n").has_value());
}

TEST(Protocol, ParseRejectsEmptyPayload) {
  std::string error;
  EXPECT_FALSE(parse_request("", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_response("", &error).has_value());
  EXPECT_FALSE(parse_request("\n\n\n", &error).has_value());
}

TEST(Protocol, ParseAcceptsCrlfLineEndings) {
  const std::string payload =
      "abp-request 1 5 localize\r\nfield default\r\npoint 1 2\r\n";
  const auto request = parse_request(payload);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->seq, 5u);
  ASSERT_EQ(request->points.size(), 1u);
  EXPECT_EQ(request->points[0], (Vec2{1, 2}));
}

TEST(Protocol, DuplicateScalarRecordsLastWins) {
  // Scalar records (field, count, deadline) overwrite; repeatable records
  // (point) accumulate. Duplicates must never crash or corrupt.
  const std::string head = "abp-request 1 1 propose\n";
  const auto request = parse_request(head +
                                     "field first\nfield second\n"
                                     "count 2\ncount 5\n"
                                     "deadline 10\ndeadline 90\n"
                                     "point 1 1\npoint 2 2\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->field, "second");
  EXPECT_EQ(request->count, 5u);
  EXPECT_EQ(request->deadline_ms, 90u);
  EXPECT_EQ(request->points.size(), 2u);
}

TEST(Protocol, DeadlineRecordParsing) {
  const std::string head = "abp-request 1 1 localize\npoint 1 2\n";
  // Absent: no deadline.
  EXPECT_EQ(parse_request(head)->deadline_ms, 0u);
  // Explicit zero is valid and means "no deadline".
  EXPECT_EQ(parse_request(head + "deadline 0\n")->deadline_ms, 0u);
  EXPECT_EQ(parse_request(head + "deadline 250\n")->deadline_ms, 250u);
  // Negative, non-numeric and >u32 values are malformed, not clamped.
  std::string error;
  EXPECT_FALSE(parse_request(head + "deadline -5\n", &error).has_value());
  EXPECT_NE(error.find("deadline"), std::string::npos);
  EXPECT_FALSE(parse_request(head + "deadline soon\n").has_value());
  EXPECT_FALSE(parse_request(head + "deadline 4294967296\n").has_value());
  EXPECT_FALSE(parse_request(head + "deadline\n").has_value());
}

TEST(Protocol, DeadlineRoundTrips) {
  Request request = full_request();
  request.deadline_ms = 1500;
  const auto copy = parse_request(format_request(request));
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(*copy, request);
}

TEST(Protocol, VersionRecordRoundTripsBothDirections) {
  Request request = full_request();
  request.version = 9;
  const auto request_copy = parse_request(format_request(request));
  ASSERT_TRUE(request_copy.has_value());
  EXPECT_EQ(request_copy->version, 9u);
  EXPECT_EQ(*request_copy, request);

  Response response;
  response.seq = 5;
  response.status = Status::kVersionMismatch;
  response.message = "backend has v1, request wants v2";
  response.version = 1;
  const auto response_copy = parse_response(format_response(response));
  ASSERT_TRUE(response_copy.has_value());
  EXPECT_EQ(response_copy->version, 1u);
  EXPECT_EQ(*response_copy, response);
}

TEST(Protocol, VersionZeroIsOmittedForPreClusterByteIdentity) {
  // Unversioned traffic must format exactly as before the cluster work:
  // a routed response with the version stripped is byte-identical to a
  // direct single-server response.
  const Request request = full_request();
  EXPECT_EQ(format_request(request).find("version"), std::string::npos);
  Response response;
  response.seq = 1;
  response.status = Status::kOk;
  EXPECT_EQ(format_response(response).find("version"), std::string::npos);
  // Explicit `version 0` parses as unversioned.
  EXPECT_EQ(parse_request("abp-request 1 1 stats\nversion 0\n")->version, 0u);
}

TEST(Protocol, MalformedVersionRecordIsRejected) {
  const std::string head = "abp-request 1 1 localize\npoint 1 2\n";
  std::string error;
  EXPECT_FALSE(parse_request(head + "version two\n", &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos);
  EXPECT_FALSE(parse_request(head + "version\n").has_value());
  EXPECT_FALSE(
      parse_response("abp-response 1 1 ok\nversion -3\n").has_value());
}

Request full_mutate_request() {
  Request request;
  request.seq = 12;
  request.endpoint = Endpoint::kMutate;
  request.field = "default";
  request.version = 4;
  request.points = {{20, 20}, {0.1234567890123456, -99.9}};
  return request;
}

TEST(Protocol, MutateRequestRoundTrips) {
  const Request request = full_mutate_request();
  std::string error;
  const auto copy = parse_request(format_request(request), &error);
  ASSERT_TRUE(copy.has_value()) << error;
  EXPECT_EQ(*copy, request);
  EXPECT_EQ(copy->version, 4u);
}

TEST(Protocol, MutationAckRecordRoundTrips) {
  Response response;
  response.seq = 13;
  response.status = Status::kOk;
  response.positions = {{20, 20}};
  response.beacon_ids = {4};
  response.mutation_ack = 4;
  const auto copy = parse_response(format_response(response));
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(copy->mutation_ack, 4u);
  EXPECT_EQ(*copy, response);
}

TEST(Protocol, MutationAckZeroIsOmittedForPreClusterByteIdentity) {
  // Every response that predates the mutation log has mutation_ack == 0,
  // so the record must vanish from the wire — a routed add-beacon response
  // stays byte-identical to a pre-cluster single server's.
  Response response;
  response.seq = 1;
  response.status = Status::kOk;
  response.positions = {{20, 20}};
  response.beacon_ids = {4};
  EXPECT_EQ(format_response(response).find("mutation-ack"),
            std::string::npos);
  // Explicit `mutation-ack 0` parses as absent.
  EXPECT_EQ(
      parse_response("abp-response 1 1 ok\nmutation-ack 0\n")->mutation_ack,
      0u);
}

TEST(Protocol, MalformedMutationAckRecordIsRejected) {
  const std::string head = "abp-response 1 1 ok\n";
  std::string error;
  EXPECT_FALSE(
      parse_response(head + "mutation-ack four\n", &error).has_value());
  EXPECT_NE(error.find("mutation-ack"), std::string::npos);
  EXPECT_FALSE(parse_response(head + "mutation-ack\n").has_value());
  EXPECT_FALSE(parse_response(head + "mutation-ack -2\n").has_value());
}

TEST(Protocol, RequestIdRecordRoundTrips) {
  Request request = full_request();
  request.endpoint = Endpoint::kAddBeacon;
  request.request_id = 0xDEADBEEFCAFED00Dull;
  request.attempt = 3;
  std::string error;
  const auto copy = parse_request(format_request(request), &error);
  ASSERT_TRUE(copy.has_value()) << error;
  EXPECT_EQ(copy->request_id, 0xDEADBEEFCAFED00Dull);
  EXPECT_EQ(copy->attempt, 3u);
  EXPECT_EQ(*copy, request);
}

TEST(Protocol, RequestIdZeroIsOmittedForPreClusterByteIdentity) {
  // Id-free traffic must format exactly as before the dedup work — clients
  // that never send ids keep producing byte-identical frames.
  Request request = full_request();
  request.endpoint = Endpoint::kAddBeacon;
  EXPECT_EQ(format_request(request).find("request-id"), std::string::npos);
  // attempt without an id never reaches the wire either.
  request.attempt = 5;
  EXPECT_EQ(format_request(request).find("request-id"), std::string::npos);
}

TEST(Protocol, MalformedRequestIdRecordIsRejected) {
  const std::string head = "abp-request 1 1 add-beacon\npoint 1 2\n";
  std::string error;
  // Truncated: the canonical record carries both id and attempt.
  EXPECT_FALSE(parse_request(head + "request-id 7\n", &error).has_value());
  EXPECT_NE(error.find("request-id"), std::string::npos);
  EXPECT_FALSE(parse_request(head + "request-id\n").has_value());
  // Zero ids never appear on the wire (the record is omitted instead).
  EXPECT_FALSE(parse_request(head + "request-id 0 1\n").has_value());
  // Non-numeric id or attempt.
  EXPECT_FALSE(parse_request(head + "request-id seven 0\n").has_value());
  EXPECT_FALSE(parse_request(head + "request-id 7 two\n").has_value());
  // Attempt counter past u32 range is malformed, not silently wrapped.
  EXPECT_FALSE(
      parse_request(head + "request-id 7 4294967296\n").has_value());
  // The saturation value itself is still in range.
  const auto copy = parse_request(head + "request-id 7 4294967295\n");
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(copy->attempt, 4294967295u);
}

TEST(Protocol, PrincipalRecordRoundTrips) {
  Request request = full_request();
  request.principal = 0x5EED5EED5EED5EEDull;
  std::string error;
  const auto copy = parse_request(format_request(request), &error);
  ASSERT_TRUE(copy.has_value()) << error;
  EXPECT_EQ(copy->principal, 0x5EED5EED5EED5EEDull);
  EXPECT_EQ(*copy, request);
}

TEST(Protocol, PrincipalZeroIsOmittedForPreTenancyByteIdentity) {
  // Anonymous traffic must format exactly as before the multi-tenant work —
  // clients that never send a principal keep producing byte-identical
  // frames, which also keeps the router cache key stable across them.
  Request request = full_request();
  EXPECT_EQ(request.principal, 0u);
  EXPECT_EQ(format_request(request).find("principal"), std::string::npos);
}

TEST(Protocol, MalformedPrincipalRecordIsRejected) {
  const std::string head = "abp-request 1 1 localize\npoint 1 2\n";
  std::string error;
  EXPECT_FALSE(parse_request(head + "principal\n", &error).has_value());
  EXPECT_NE(error.find("malformed principal record"), std::string::npos);
  // Zero ids never appear on the wire (the record is omitted instead).
  EXPECT_FALSE(parse_request(head + "principal 0\n").has_value());
  EXPECT_FALSE(parse_request(head + "principal seven\n").has_value());
  EXPECT_FALSE(parse_request(head + "principal 7 8\n").has_value());
}

TEST(Protocol, DedupExpiredStatusRoundTripsAndIsTerminal) {
  Response response;
  response.seq = 3;
  response.status = Status::kDedupExpired;
  response.message = "request id unknown and the dedup window rolled over";
  const auto copy = parse_response(format_response(response));
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(copy->status, Status::kDedupExpired);
  EXPECT_EQ(*copy, response);
  // Retrying the same id can never change the answer: the client must
  // verify the write and mint a fresh id instead of looping.
  EXPECT_FALSE(status_retryable(Status::kDedupExpired));
}

TEST(Protocol, TruncatedMutateFrameDoesNotDecode) {
  // A mutate frame cut mid-points must neither decode nor corrupt the
  // stream: the decoder just waits for the rest of the payload.
  const std::string frame = encode_frame(format_request(full_mutate_request()));
  FrameDecoder decoder;
  decoder.feed(frame.substr(0, frame.size() / 2));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.corrupt());
  decoder.feed(frame.substr(frame.size() / 2));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*parse_request(*payload), full_mutate_request());
}

TEST(Protocol, MaxPointsMutateAlwaysFitsTheFrameCap) {
  // The per-request point cap is sized so a full mutate — worst-case
  // 17-significant-digit coordinates included — still frames: replication
  // can never be wedged by an accepted write that cannot be shipped.
  Request request = full_mutate_request();
  request.points.assign(kMaxPointsPerRequest,
                        {-2.2250738585072014e-308, -1.7976931348623157e+308});
  const std::string payload = format_request(request);
  EXPECT_LE(payload.size(), kMaxFramePayload);
  EXPECT_NO_THROW(encode_frame(payload));
}

TEST(Protocol, RequestTextBlockRoundTripsRawBytes) {
  // Snapshot installs carry the field file verbatim — including newlines
  // and lines that look like protocol records.
  Request request;
  request.seq = 6;
  request.endpoint = Endpoint::kSnapshot;
  request.field = "default";
  request.version = 2;
  request.text = "abp-field 1\nbounds 0 0 10 10\npoint 1 2\n";
  const auto copy = parse_request(format_request(request));
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(copy->text, request.text);
  EXPECT_EQ(*copy, request);
  // Empty text emits no record at all.
  request.text.clear();
  EXPECT_EQ(format_request(request).find("text"), std::string::npos);
}

TEST(Protocol, RequestTextBlockLengthIsValidated) {
  const std::string head = "abp-request 1 1 snapshot\nfield f\n";
  std::string error;
  EXPECT_FALSE(parse_request(head + "text 9999\nshort\n", &error).has_value());
  EXPECT_NE(error.find("text"), std::string::npos);
  EXPECT_FALSE(parse_request(head + "text -1\nx\n").has_value());
  EXPECT_FALSE(parse_request(head + "text\n").has_value());
}

TEST(Protocol, EndpointTraitsCoverEveryEndpoint) {
  for (const Endpoint endpoint : kAllEndpoints) {
    EXPECT_EQ(endpoint_traits(endpoint).endpoint, endpoint)
        << endpoint_name(endpoint);
  }
}

TEST(Protocol, OnlyWritesAndAdminAreNonIdempotent) {
  // add-beacon mints a new beacon per delivery; admin verbs transition the
  // membership state machine, so a blind re-delivery could add or drain
  // twice. Everything else may be retried freely.
  for (const Endpoint endpoint : kAllEndpoints) {
    EXPECT_EQ(endpoint_traits(endpoint).idempotent,
              endpoint != Endpoint::kAddBeacon &&
                  endpoint != Endpoint::kAdmin)
        << endpoint_name(endpoint);
  }
}

TEST(Protocol, EndpointTraitsEncodeLayerPolicy) {
  // Cacheable ⊂ idempotent and read-only: exactly the deterministic point
  // queries. Mutating: the write path pair (admin mutates *membership*, not
  // deployment state, so it is deliberately not `mutating`). Internal-only:
  // replication machinery plus the membership plane — never client-facing.
  // Router-local: answered by the router itself; admin is both router-local
  // and internal-only, so the router answers it and a direct backend
  // rejects it. Batchable == cacheable here by coincidence of both being
  // the point queries, asserted separately so a future divergence is a
  // conscious choice.
  for (const Endpoint endpoint : kAllEndpoints) {
    const EndpointTraits& traits = endpoint_traits(endpoint);
    const bool point_query = endpoint == Endpoint::kLocalize ||
                             endpoint == Endpoint::kErrorAt;
    EXPECT_EQ(traits.cacheable, point_query) << endpoint_name(endpoint);
    EXPECT_EQ(traits.batchable, point_query) << endpoint_name(endpoint);
    EXPECT_EQ(traits.mutating, endpoint == Endpoint::kAddBeacon ||
                                   endpoint == Endpoint::kMutate)
        << endpoint_name(endpoint);
    EXPECT_EQ(traits.internal_only, endpoint == Endpoint::kMutate ||
                                        endpoint == Endpoint::kAdmin)
        << endpoint_name(endpoint);
    EXPECT_EQ(traits.router_local, endpoint == Endpoint::kStats ||
                                       endpoint == Endpoint::kListFields ||
                                       endpoint == Endpoint::kAdmin)
        << endpoint_name(endpoint);
    if (traits.cacheable) {
      EXPECT_TRUE(traits.idempotent) << endpoint_name(endpoint);
    }
  }
}

TEST(Protocol, ResilienceStatusesRoundTrip) {
  for (const Status status : {Status::kOverloaded, Status::kDeadlineExceeded,
                              Status::kVersionMismatch}) {
    EXPECT_TRUE(status_retryable(status));
    EXPECT_EQ(status_from_name(status_name(status)), status);
    Response response;
    response.seq = 11;
    response.status = status;
    response.message = "shed";
    const auto copy = parse_response(format_response(response));
    ASSERT_TRUE(copy.has_value()) << status_name(status);
    EXPECT_EQ(copy->status, status);
  }
  EXPECT_FALSE(status_retryable(Status::kOk));
  EXPECT_FALSE(status_retryable(Status::kBadRequest));
  EXPECT_FALSE(status_retryable(Status::kNotFound));
  EXPECT_FALSE(status_retryable(Status::kInternal));
  EXPECT_TRUE(status_retryable(Status::kUnavailable));
}

TEST(Protocol, FormatResponseCappedReplacesOversizedPayload) {
  Response response;
  response.seq = 77;
  response.status = Status::kOk;
  response.text = std::string(kMaxFramePayload + 1024, 'x');
  const std::string payload = format_response_capped(response);
  EXPECT_LE(payload.size(), kMaxFramePayload);
  const auto parsed = parse_response(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, 77u);  // the peer can still correlate the reply
  EXPECT_EQ(parsed->status, Status::kInternal);
  EXPECT_NE(parsed->message.find("4194304"), std::string::npos);
  // The capped payload always frames cleanly.
  EXPECT_NO_THROW(encode_frame(payload));
  // A payload under the cap passes through byte-identical.
  Response small;
  small.seq = 78;
  small.status = Status::kOk;
  EXPECT_EQ(format_response_capped(small), format_response(small));
}

TEST(Protocol, EncodeFrameRejectsOversizedPayload) {
  EXPECT_NO_THROW(encode_frame(std::string(kMaxFramePayload, 'x')));
  EXPECT_THROW(encode_frame(std::string(kMaxFramePayload + 1, 'x')),
               ServeError);
}

TEST(Protocol, ParseReportsDiagnostic) {
  std::string error;
  EXPECT_FALSE(
      parse_request("abp-request 1 1 teleport\n", &error).has_value());
  EXPECT_NE(error.find("teleport"), std::string::npos);
}

TEST(Protocol, FieldNameValidation) {
  EXPECT_TRUE(valid_field_name("default"));
  EXPECT_TRUE(valid_field_name("a-b_c.9"));
  EXPECT_FALSE(valid_field_name(""));
  EXPECT_FALSE(valid_field_name("has space"));
  EXPECT_FALSE(valid_field_name("semi;colon"));
  EXPECT_FALSE(valid_field_name(std::string(65, 'a')));
}

TEST(Protocol, FrameRoundTrip) {
  const std::string payload = format_request(full_request());
  FrameDecoder decoder;
  decoder.feed(encode_frame(payload));
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.corrupt());
}

TEST(Protocol, FrameDecoderHandlesBytewiseFeeding) {
  const std::string payload = "abp-request 1 5 stats\n";
  const std::string frame = encode_frame(payload);
  FrameDecoder decoder;
  for (const char c : frame) {
    decoder.feed(std::string_view(&c, 1));
  }
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
}

TEST(Protocol, FrameDecoderHandlesPipelinedFrames) {
  const std::string a = "abp-request 1 1 stats\n";
  const std::string b = "abp-request 1 2 list-fields\n";
  FrameDecoder decoder;
  decoder.feed(encode_frame(a) + encode_frame(b));
  EXPECT_EQ(decoder.next().value_or(""), a);
  EXPECT_EQ(decoder.next().value_or(""), b);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Protocol, FrameDecoderNeedsFullPayload) {
  const std::string frame = encode_frame("abp-request 1 1 stats\n");
  FrameDecoder decoder;
  decoder.feed(frame.substr(0, frame.size() - 5));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.corrupt());
  decoder.feed(frame.substr(frame.size() - 5));
  EXPECT_TRUE(decoder.next().has_value());
}

TEST(Protocol, FrameDecoderRejectsBadMagic) {
  FrameDecoder decoder;
  decoder.feed("nonsense 22\nabp-request 1 1 stats\n");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupt());
  // Corrupt is sticky: further feeds are ignored.
  decoder.feed(encode_frame("abp-request 1 1 stats\n"));
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Protocol, FrameDecoderRejectsOversizedLength) {
  FrameDecoder decoder;
  decoder.feed("abps1 99999999999\n");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupt());
}

TEST(Protocol, FrameDecoderRejectsNonNumericLength) {
  FrameDecoder decoder;
  decoder.feed("abps1 12x\npayload");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupt());
}

TEST(Protocol, FrameDecoderRejectsRunawayHeader) {
  FrameDecoder decoder;
  decoder.feed(std::string(100, 'a'));  // no newline, far past a header
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupt());
}

TEST(Protocol, TextBlockLengthIsValidated) {
  // Claimed text length larger than the remaining payload must fail
  // cleanly, not read out of range.
  const std::string payload = "abp-response 1 1 ok\ntext 9999\nshort\n";
  std::string error;
  EXPECT_FALSE(parse_response(payload, &error).has_value());
  EXPECT_NE(error.find("text"), std::string::npos);
}

}  // namespace
}  // namespace abp::serve
