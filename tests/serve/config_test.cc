/// `ServeConfig`/`QueryConfig`: the single parse-and-validate path behind
/// `abp serve` and `abp query`. Every test goes through `from_flags` with a
/// synthetic argv, exactly like the CLI, so flag spelling, defaults and
/// rejection diagnostics are all pinned here.
#include "serve/config.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/assert.h"

namespace abp::serve {
namespace {

Flags make_flags(const std::vector<std::string>& args) {
  std::vector<const char*> argv = {"abp"};
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

ServeConfig serve_from(const std::vector<std::string>& args) {
  const Flags flags = make_flags(args);
  return ServeConfig::from_flags(flags);
}

QueryConfig query_from(const std::vector<std::string>& args) {
  const Flags flags = make_flags(args);
  return QueryConfig::from_flags(flags);
}

TEST(ServeConfig, DefaultsMatchTheLegacyFlagSurface) {
  const ServeConfig config = serve_from({"--field", "field.txt"});
  EXPECT_EQ(config.field_path, "field.txt");
  EXPECT_EQ(config.name, "default");
  EXPECT_EQ(config.workers, 0u);
  EXPECT_EQ(config.batch, 16u);
  EXPECT_EQ(config.max_queue, 0u);
  EXPECT_EQ(config.max_inflight, 0u);
  EXPECT_EQ(config.retry_after_hint_ms, 0u);
  EXPECT_EQ(config.transport, TransportKind::kThreaded);
  EXPECT_EQ(config.port, 0);
  EXPECT_EQ(config.event_shards, 1u);
  EXPECT_FALSE(config.oneshot);
}

TEST(ServeConfig, ParsesTheTransportRedesignFlags) {
  const ServeConfig config = serve_from(
      {"--field", "field.txt", "--transport", "epoll", "--event-shards", "4",
       "--retry-after-ms", "40", "--read-timeout-s", "12.5",
       "--write-timeout-s", "2.5", "--max-inflight", "8"});
  EXPECT_EQ(config.transport, TransportKind::kEpoll);
  EXPECT_EQ(config.event_shards, 4u);
  EXPECT_EQ(config.retry_after_hint_ms, 40u);
  EXPECT_DOUBLE_EQ(config.read_timeout_s, 12.5);
  EXPECT_DOUBLE_EQ(config.write_timeout_s, 2.5);
  EXPECT_EQ(config.max_inflight, 8u);
}

TEST(ServeConfig, ProjectsOntoEngineAndTransportOptions) {
  const ServeConfig config = serve_from(
      {"--field", "f", "--workers", "3", "--batch", "32", "--max-queue",
       "128", "--retry-after-ms", "25", "--transport", "epoll",
       "--event-shards", "2", "--port", "9000"});
  const Server::Options server = config.server_options();
  EXPECT_EQ(server.workers, 3u);
  EXPECT_EQ(server.max_batch, 32u);
  EXPECT_EQ(server.max_queue, 128u);
  EXPECT_EQ(server.retry_after_hint_ms, 25u);
  const TransportOptions transport = config.transport_options();
  EXPECT_EQ(transport.port, 9000);
  EXPECT_EQ(transport.event_shards, 2u);
  // The threaded pool never drops below two slots even for tiny --workers.
  EXPECT_GE(transport.conn_workers, 2u);
}

TEST(ServeConfig, RejectsInvalidCombinations) {
  // No field at all.
  EXPECT_THROW(serve_from({}), CheckFailure);
  // Unknown transport name.
  EXPECT_THROW(serve_from({"--field", "f", "--transport", "iocp"}),
               CheckFailure);
  // Sharding only makes sense for the event loop.
  EXPECT_THROW(serve_from({"--field", "f", "--event-shards", "2"}),
               CheckFailure);
  // One-shot needs an input and cannot also listen.
  EXPECT_THROW(serve_from({"--field", "f", "--oneshot", "true"}),
               CheckFailure);
  EXPECT_THROW(serve_from({"--field", "f", "--oneshot", "true", "--in",
                           "frames.bin", "--port", "9000"}),
               CheckFailure);
  // --in/--out are one-shot-only.
  EXPECT_THROW(serve_from({"--field", "f", "--in", "frames.bin"}),
               CheckFailure);
  // Degenerate engine values.
  EXPECT_THROW(serve_from({"--field", "f", "--batch", "0"}), CheckFailure);
  EXPECT_THROW(serve_from({"--field", "f", "--read-timeout-s", "0"}),
               CheckFailure);
  EXPECT_THROW(serve_from({"--field", "f", "--workers", "-1"}),
               CheckFailure);
}

TEST(ServeConfig, EpollWithMultipleShardsValidates) {
  const ServeConfig config = serve_from(
      {"--field", "f", "--transport", "epoll", "--event-shards", "8"});
  config.validate();  // directly constructed configs re-check the same way
  EXPECT_EQ(config.event_shards, 8u);
}

TEST(ServeConfig, QuotaFlagsProjectOntoServerOptions) {
  const ServeConfig config = serve_from(
      {"--field", "f", "--quota-rps", "5", "--quota-burst", "20"});
  EXPECT_DOUBLE_EQ(config.quota_rps, 5.0);
  EXPECT_DOUBLE_EQ(config.quota_burst, 20.0);
  const Server::Options server = config.server_options();
  EXPECT_TRUE(server.quota.enabled());
  EXPECT_DOUBLE_EQ(server.quota.rps, 5.0);
  EXPECT_DOUBLE_EQ(server.quota.capacity(), 20.0);
  // Quotas default off.
  EXPECT_FALSE(serve_from({"--field", "f"}).server_options().quota.enabled());
}

TEST(ServeConfig, RejectsDegenerateQuotaValues) {
  EXPECT_THROW(serve_from({"--field", "f", "--quota-rps", "-1"}),
               CheckFailure);
  // Burst without a rate is meaningless — there is nothing to refill.
  EXPECT_THROW(serve_from({"--field", "f", "--quota-burst", "10"}),
               CheckFailure);
}

TEST(QueryConfig, PrincipalFlagStampsTheRequest) {
  const QueryConfig config = query_from(
      {"--field", "f", "--points", "1,2", "--principal", "42"});
  EXPECT_EQ(config.request.principal, 42u);
  // Default stays anonymous: the wire record is omitted entirely.
  const QueryConfig anon = query_from({"--field", "f", "--points", "1,2"});
  EXPECT_EQ(anon.request.principal, 0u);
  EXPECT_EQ(format_request(anon.request).find("principal"),
            std::string::npos);
}

TEST(QueryConfig, RequiresExactlyOneDestination) {
  EXPECT_THROW(query_from({}), CheckFailure);
  EXPECT_THROW(query_from({"--field", "f", "--connect", "localhost:9000"}),
               CheckFailure);
}

TEST(QueryConfig, LocalFieldModeCarriesTheRequest) {
  const QueryConfig config = query_from(
      {"--field", "f", "--type", "localize", "--points", "1,2;3,4", "--seq",
       "9"});
  EXPECT_EQ(config.mode, QueryConfig::Mode::kLocalField);
  EXPECT_EQ(config.request.endpoint, Endpoint::kLocalize);
  EXPECT_EQ(config.request.seq, 9u);
  ASSERT_EQ(config.request.points.size(), 2u);
  EXPECT_DOUBLE_EQ(config.request.points[1].x, 3.0);
  EXPECT_DOUBLE_EQ(config.request.points[1].y, 4.0);
}

TEST(QueryConfig, ConnectModeParsesHostPortAndRetryPolicy) {
  const QueryConfig config = query_from(
      {"--connect", "10.0.0.5:8125", "--retries", "6", "--backoff-ms", "50",
       "--budget-ms", "900"});
  EXPECT_EQ(config.mode, QueryConfig::Mode::kConnect);
  EXPECT_EQ(config.host, "10.0.0.5");
  EXPECT_EQ(config.port, 8125);
  EXPECT_EQ(config.retry.max_attempts, 6u);
  EXPECT_DOUBLE_EQ(config.retry.base_backoff_ms, 50.0);
  EXPECT_DOUBLE_EQ(config.retry.deadline_budget_ms, 900.0);
}

TEST(QueryConfig, ConnectModeRejectsMalformedEndpoints) {
  EXPECT_THROW(query_from({"--connect", "no-port-here"}), CheckFailure);
  EXPECT_THROW(query_from({"--connect", "host:notaport"}), CheckFailure);
  EXPECT_THROW(query_from({"--connect", "host:0"}), CheckFailure);
  EXPECT_THROW(query_from({"--connect", "host:9000", "--retries", "0"}),
               CheckFailure);
}

TEST(QueryConfig, DecodeModeIgnoresRequestFlags) {
  const QueryConfig config = query_from({"--decode", "responses.bin"});
  EXPECT_EQ(config.mode, QueryConfig::Mode::kDecode);
  EXPECT_EQ(config.decode_path, "responses.bin");
}

TEST(QueryConfig, EncodeModeSupportsAppendAndCorrupt) {
  const QueryConfig config = query_from(
      {"--encode-to", "frames.bin", "--append", "true", "--corrupt", "true",
       "--points", "5,5"});
  EXPECT_EQ(config.mode, QueryConfig::Mode::kEncode);
  EXPECT_TRUE(config.append);
  EXPECT_TRUE(config.corrupt);
}

}  // namespace
}  // namespace abp::serve
