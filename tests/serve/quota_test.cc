/// `PrincipalQuotas`: token-bucket admission on an injected clock. Every
/// test drives `admit` with explicit timestamps — no sleeping, no real
/// clock — so refill arithmetic and retry-after hints are pinned exactly.
#include "serve/quota.h"

#include <gtest/gtest.h>

namespace abp::serve {
namespace {

QuotaOptions options(double rps, double burst = 0.0) {
  QuotaOptions o;
  o.rps = rps;
  o.burst = burst;
  return o;
}

TEST(Quota, DisabledWhenRpsIsZero) {
  EXPECT_FALSE(QuotaOptions().enabled());
  EXPECT_TRUE(options(5.0).enabled());
}

TEST(Quota, CapacityDefaultsToOneSecondBurst) {
  EXPECT_DOUBLE_EQ(options(10.0).capacity(), 10.0);
  EXPECT_DOUBLE_EQ(options(10.0, 25.0).capacity(), 25.0);
}

TEST(Quota, FirstBucketStartsFullAndDrainsToShed) {
  // capacity 3: a new principal gets exactly its burst, then sheds.
  PrincipalQuotas quotas(options(1.0, 3.0));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(quotas.admit(7, 1000.0).admitted) << i;
  }
  const auto shed = quotas.admit(7, 1000.0);
  EXPECT_FALSE(shed.admitted);
  EXPECT_GT(shed.retry_after_ms, 0u) << "a shed must carry a moving hint";
}

TEST(Quota, RefillOnInjectedClock) {
  // 10 rps, burst 1: one token per 100 ms. Drain at t=0, then watch the
  // bucket refill as the manual clock advances.
  PrincipalQuotas quotas(options(10.0, 1.0));
  EXPECT_TRUE(quotas.admit(1, 0.0).admitted);
  EXPECT_FALSE(quotas.admit(1, 0.0).admitted);
  // Half a token at +50 ms: still shed, hint covers the remaining deficit.
  const auto midway = quotas.admit(1, 50.0);
  EXPECT_FALSE(midway.admitted);
  EXPECT_LE(midway.retry_after_ms, 100u);
  // A whole token at +150 ms: admitted again, and the spend re-empties the
  // bucket so the next request sheds.
  EXPECT_TRUE(quotas.admit(1, 150.0).admitted);
  EXPECT_FALSE(quotas.admit(1, 150.0).admitted);
}

TEST(Quota, RetryAfterMatchesTheBucketDeficit) {
  // 2 rps: a whole token takes 500 ms. Freshly drained at t=0, the hint
  // must say ~500 ms — the principal's own deficit, not a global constant.
  PrincipalQuotas quotas(options(2.0, 1.0));
  EXPECT_TRUE(quotas.admit(3, 0.0).admitted);
  const auto shed = quotas.admit(3, 0.0);
  ASSERT_FALSE(shed.admitted);
  EXPECT_EQ(shed.retry_after_ms, 500u);
  // Following the hint lands exactly on a refilled token.
  EXPECT_TRUE(quotas.admit(3, double(shed.retry_after_ms)).admitted);
}

TEST(Quota, BucketsAreIndependentPerPrincipal) {
  // A noisy principal drains itself; a quiet one is untouched.
  PrincipalQuotas quotas(options(1.0, 2.0));
  EXPECT_TRUE(quotas.admit(1, 0.0).admitted);
  EXPECT_TRUE(quotas.admit(1, 0.0).admitted);
  EXPECT_FALSE(quotas.admit(1, 0.0).admitted);
  EXPECT_TRUE(quotas.admit(2, 0.0).admitted);
  EXPECT_EQ(quotas.principals(), 2u);
}

TEST(Quota, AnonymousTrafficSharesOneBucket) {
  // Principal 0 is "no identity": all anonymous clients drain the same
  // bucket, so identity is what buys an isolated budget.
  PrincipalQuotas quotas(options(1.0, 2.0));
  EXPECT_TRUE(quotas.admit(0, 0.0).admitted);
  EXPECT_TRUE(quotas.admit(0, 0.0).admitted);
  EXPECT_FALSE(quotas.admit(0, 0.0).admitted);
  EXPECT_EQ(quotas.principals(), 1u);
}

TEST(Quota, RefillClampsAtCapacity) {
  // A long-idle bucket refills to capacity, never beyond: after a huge gap
  // exactly `burst` admissions pass.
  PrincipalQuotas quotas(options(100.0, 2.0));
  EXPECT_TRUE(quotas.admit(9, 0.0).admitted);
  EXPECT_TRUE(quotas.admit(9, 1e9).admitted);
  EXPECT_TRUE(quotas.admit(9, 1e9).admitted);
  EXPECT_FALSE(quotas.admit(9, 1e9).admitted);
}

TEST(Quota, RetryAfterIsNeverZeroOnAShed) {
  // Even a microscopic deficit rounds up to 1 ms — a zero hint would tell
  // the client to hammer.
  PrincipalQuotas quotas(options(10000.0, 1.0));
  EXPECT_TRUE(quotas.admit(5, 0.0).admitted);
  const auto shed = quotas.admit(5, 0.0);
  ASSERT_FALSE(shed.admitted);
  EXPECT_GE(shed.retry_after_ms, 1u);
}

}  // namespace
}  // namespace abp::serve
