#include "serve/service.h"

#include <gtest/gtest.h>

#include <sstream>

#include "io/field_io.h"
#include "loc/localizer.h"
#include "radio/noise_model.h"

namespace abp::serve {
namespace {

constexpr double kRange = 15.0;

BeaconField make_field() {
  BeaconField field(AABB({0, 0}, {60, 60}));
  field.add({10, 10});
  field.add({30, 10});
  field.add({10, 30});
  field.add({45, 45});
  return field;
}

ServiceConfig test_config() {
  ServiceConfig config;
  config.nominal_range = kRange;
  config.noise = 0.0;
  config.lattice_step = 2.0;
  return config;
}

Request point_request(Endpoint endpoint, std::vector<Vec2> points) {
  Request request;
  request.seq = 1;
  request.endpoint = endpoint;
  request.points = std::move(points);
  return request;
}

TEST(Service, LocalizeMatchesCentroidLocalizer) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  const std::vector<Vec2> points = {{12, 12}, {50, 50}, {0, 0}, {20, 15}};
  const Response response =
      service.handle(point_request(Endpoint::kLocalize, points));
  ASSERT_EQ(response.status, Status::kOk) << response.message;
  ASSERT_EQ(response.estimates.size(), points.size());

  // Noise = 0 makes connectivity a pure range test, independent of the
  // service's internal seed — so a locally built localizer must agree.
  const BeaconField field = make_field();
  const PerBeaconNoiseModel model(kRange, 0.0, 1);
  const CentroidLocalizer localizer(field, model);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const LocalizationResult expect = localizer.localize(points[i]);
    EXPECT_DOUBLE_EQ(response.estimates[i].estimate.x, expect.estimate.x);
    EXPECT_DOUBLE_EQ(response.estimates[i].estimate.y, expect.estimate.y);
    EXPECT_EQ(response.estimates[i].connected, expect.connected);
  }
}

TEST(Service, ErrorAtMatchesCentroidLocalizer) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  const std::vector<Vec2> points = {{12, 12}, {50, 50}};
  const Response response =
      service.handle(point_request(Endpoint::kErrorAt, points));
  ASSERT_EQ(response.status, Status::kOk);
  ASSERT_EQ(response.errors.size(), points.size());

  const BeaconField field = make_field();
  const PerBeaconNoiseModel model(kRange, 0.0, 1);
  const CentroidLocalizer localizer(field, model);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(response.errors[i], localizer.error(points[i]));
  }
}

TEST(Service, UnknownFieldIsNotFound) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Request request = point_request(Endpoint::kLocalize, {{1, 1}});
  request.field = "nowhere";
  const Response response = service.handle(request);
  EXPECT_EQ(response.status, Status::kNotFound);
  EXPECT_NE(response.message.find("nowhere"), std::string::npos);
}

TEST(Service, UnknownAlgorithmIsNotFound) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Request request;
  request.endpoint = Endpoint::kPropose;
  request.algorithm = "teleport";
  const Response response = service.handle(request);
  EXPECT_EQ(response.status, Status::kNotFound);
  EXPECT_NE(response.message.find("teleport"), std::string::npos);
}

TEST(Service, ProposeStaysInBounds) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  for (const char* algorithm :
       {"random", "max", "grid", "grid-norm", "coverage", "locus"}) {
    Request request;
    request.endpoint = Endpoint::kPropose;
    request.algorithm = algorithm;
    request.count = 3;
    const Response response = service.handle(request);
    ASSERT_EQ(response.status, Status::kOk)
        << algorithm << ": " << response.message;
    ASSERT_EQ(response.positions.size(), 3u) << algorithm;
    const AABB bounds = make_field().bounds();
    for (const Vec2 p : response.positions) {
      EXPECT_TRUE(bounds.contains(p)) << algorithm;
    }
  }
}

TEST(Service, ProposeIsDeterministicPerServiceSeed) {
  const auto run = [] {
    LocalizationService service(test_config());
    service.add_field("default", make_field());
    Request request;
    request.endpoint = Endpoint::kPropose;
    request.algorithm = "random";
    request.count = 4;
    return service.handle(request).positions;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
}

TEST(Service, AddBeaconShowsUpInSnapshot) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Request add = point_request(Endpoint::kAddBeacon, {{55, 5}});
  const Response added = service.handle(add);
  ASSERT_EQ(added.status, Status::kOk) << added.message;
  ASSERT_EQ(added.beacon_ids.size(), 1u);
  const std::uint64_t id = added.beacon_ids[0];

  Request snapshot;
  snapshot.endpoint = Endpoint::kSnapshot;
  const Response snap = service.handle(snapshot);
  ASSERT_EQ(snap.status, Status::kOk);
  std::istringstream in(snap.text);
  const BeaconField restored = read_field(in);
  EXPECT_EQ(restored.size(), make_field().size() + 1);
  const auto beacon = restored.get(static_cast<BeaconId>(id));
  ASSERT_TRUE(beacon.has_value());
  EXPECT_DOUBLE_EQ(beacon->pos.x, 55.0);
  EXPECT_DOUBLE_EQ(beacon->pos.y, 5.0);
}

TEST(Service, AddBeaconClampsOutOfBoundsPosition) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  const Response response =
      service.handle(point_request(Endpoint::kAddBeacon, {{-10, 500}}));
  ASSERT_EQ(response.status, Status::kOk) << response.message;
  ASSERT_EQ(response.positions.size(), 1u);
  EXPECT_TRUE(make_field().bounds().contains(response.positions[0]));
}

TEST(Service, AddBeaconChangesLocalization) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  const Vec2 probe{45, 45};
  // Beacon 3 sits at (45,45); add another in range of the probe and the
  // centroid must move.
  const Response before =
      service.handle(point_request(Endpoint::kLocalize, {probe}));
  service.handle(point_request(Endpoint::kAddBeacon, {{50, 50}}));
  const Response after =
      service.handle(point_request(Endpoint::kLocalize, {probe}));
  ASSERT_EQ(before.estimates.size(), 1u);
  ASSERT_EQ(after.estimates.size(), 1u);
  EXPECT_EQ(after.estimates[0].connected, before.estimates[0].connected + 1);
}

TEST(Service, ListFieldsAndStats) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  service.add_field("second", make_field());

  Request list;
  list.endpoint = Endpoint::kListFields;
  const Response names = service.handle(list);
  ASSERT_EQ(names.status, Status::kOk);
  EXPECT_NE(names.text.find("default\n"), std::string::npos);
  EXPECT_NE(names.text.find("second\n"), std::string::npos);

  Request stats;
  stats.endpoint = Endpoint::kStats;
  const Response report = service.handle(stats);
  ASSERT_EQ(report.status, Status::kOk);
  EXPECT_EQ(report.text.rfind("abp-serve-stats 1", 0), 0u);
}

TEST(Service, ReplacingAFieldTakesEffect) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  BeaconField empty(AABB({0, 0}, {60, 60}));
  service.add_field("default", std::move(empty));
  const Response response =
      service.handle(point_request(Endpoint::kLocalize, {{12, 12}}));
  ASSERT_EQ(response.estimates.size(), 1u);
  EXPECT_EQ(response.estimates[0].connected, 0u);
}

TEST(Service, HandleBatchMatchesIndividualHandles) {
  const std::vector<Vec2> probes = {{12, 12}, {50, 50}, {20, 15}, {0, 0}};
  std::vector<Request> requests;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    Request request = point_request(
        i % 2 == 0 ? Endpoint::kLocalize : Endpoint::kErrorAt, {probes[i]});
    request.seq = i + 1;
    requests.push_back(std::move(request));
  }

  LocalizationService batched(test_config());
  batched.add_field("default", make_field());
  const std::vector<Response> batch = batched.handle_batch(requests);

  LocalizationService solo(test_config());
  solo.add_field("default", make_field());
  ASSERT_EQ(batch.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batch[i], solo.handle(requests[i])) << "request " << i;
  }
}

TEST(Service, HandleBatchMixedFieldsFallsBackCorrectly) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  service.add_field("second", make_field());
  std::vector<Request> requests;
  Request a = point_request(Endpoint::kLocalize, {{12, 12}});
  a.field = "default";
  Request b = point_request(Endpoint::kLocalize, {{12, 12}});
  b.field = "second";
  Request c;
  c.endpoint = Endpoint::kListFields;
  requests = {a, b, c};
  const std::vector<Response> out = service.handle_batch(requests);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].status, Status::kOk);
  EXPECT_EQ(out[1].status, Status::kOk);
  EXPECT_EQ(out[0].estimates.size(), 1u);
  EXPECT_NE(out[2].text.find("second"), std::string::npos);
}

std::string field_file_text() {
  std::ostringstream out;
  write_field(out, make_field());
  return out.str();
}

Request install_request(std::uint64_t version) {
  Request install;
  install.seq = 1;
  install.endpoint = Endpoint::kSnapshot;
  install.field = "default";
  install.text = field_file_text();
  install.version = version;
  return install;
}

Request mutate_request(std::uint64_t version, std::vector<Vec2> points) {
  Request mutate;
  mutate.seq = 2;
  mutate.endpoint = Endpoint::kMutate;
  mutate.field = "default";
  mutate.version = version;
  mutate.points = std::move(points);
  return mutate;
}

TEST(Service, MutateAppliesInVersionOrder) {
  LocalizationService service(test_config());
  ASSERT_EQ(service.handle(install_request(1)).status, Status::kOk);
  const Response applied = service.handle(mutate_request(2, {{20, 20}}));
  ASSERT_EQ(applied.status, Status::kOk) << applied.message;
  EXPECT_EQ(applied.mutation_ack, 2u);
  EXPECT_EQ(applied.version, 2u);
  ASSERT_EQ(applied.positions.size(), 1u);
  EXPECT_EQ(applied.positions[0], Vec2(20, 20));
  ASSERT_EQ(applied.beacon_ids.size(), 1u);
  EXPECT_EQ(applied.beacon_ids[0], 4u) << "ids continue the snapshot's";
  EXPECT_EQ(service.field_version("default"), 2u);
}

TEST(Service, MutateAtOrBelowHeldVersionAcksWithoutReapplying) {
  LocalizationService service(test_config());
  service.handle(install_request(1));
  service.handle(mutate_request(2, {{20, 20}}));
  // The same mutation delivered again (lost ack, replay overlap): ack at
  // the held version, no double-deployed beacon.
  const Response replay = service.handle(mutate_request(2, {{20, 20}}));
  ASSERT_EQ(replay.status, Status::kOk);
  EXPECT_EQ(replay.mutation_ack, 2u);
  EXPECT_TRUE(replay.beacon_ids.empty());
  Request snapshot;
  snapshot.endpoint = Endpoint::kSnapshot;
  snapshot.field = "default";
  std::istringstream in(service.handle(snapshot).text);
  EXPECT_EQ(read_field(in).size(), make_field().size() + 1);
}

TEST(Service, MutateWithAGapIsVersionMismatch) {
  LocalizationService service(test_config());
  service.handle(install_request(1));
  // Version 3 would skip version 2: the replica is lagging and must be
  // repaired (replay or install), never apply out of order.
  const Response gapped = service.handle(mutate_request(3, {{20, 20}}));
  EXPECT_EQ(gapped.status, Status::kVersionMismatch);
  EXPECT_EQ(gapped.version, 1u) << "the mismatch carries the held version";
  EXPECT_EQ(service.field_version("default"), 1u);
}

TEST(Service, MutateValidation) {
  LocalizationService service(test_config());
  service.handle(install_request(1));
  EXPECT_EQ(service.handle(mutate_request(0, {{20, 20}})).status,
            Status::kBadRequest)
      << "a mutate must carry the version it establishes";
  EXPECT_EQ(service.handle(mutate_request(2, {})).status,
            Status::kBadRequest);
  // Unknown deployment: retryable mismatch (at version 0) so the sender's
  // install-then-retry repair path self-heals.
  Request unknown = mutate_request(2, {{20, 20}});
  unknown.field = "ghost";
  EXPECT_EQ(service.handle(unknown).status, Status::kVersionMismatch);
}

TEST(Service, VersionProbeAnswersHeldVersion) {
  LocalizationService service(test_config());
  Request probe;
  probe.endpoint = Endpoint::kVersion;
  probe.field = "default";
  // Unknown deployment probes ok at version 0 — real versions start at 1.
  Response answer = service.handle(probe);
  ASSERT_EQ(answer.status, Status::kOk);
  EXPECT_EQ(answer.version, 0u);
  service.handle(install_request(1));
  service.handle(mutate_request(2, {{20, 20}}));
  answer = service.handle(probe);
  ASSERT_EQ(answer.status, Status::kOk);
  EXPECT_EQ(answer.version, 2u);
}

TEST(Service, ReadFenceIsOneSided) {
  LocalizationService service(test_config());
  service.handle(install_request(1));
  service.handle(mutate_request(2, {{20, 20}}));
  Request read = point_request(Endpoint::kLocalize, {{12, 12}});
  read.field = "default";
  // A replica *ahead* of the fence has absorbed every write the fence
  // guarantees: it serves.
  read.version = 1;
  EXPECT_EQ(service.handle(read).status, Status::kOk);
  read.version = 2;
  EXPECT_EQ(service.handle(read).status, Status::kOk);
  // Only a *lagging* replica answers the retryable mismatch.
  read.version = 3;
  const Response lagging = service.handle(read);
  EXPECT_EQ(lagging.status, Status::kVersionMismatch);
  EXPECT_EQ(lagging.version, 2u);
}

TEST(Service, AddBeaconDuplicateIdCollectsTheOriginalAck) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Request add = point_request(Endpoint::kAddBeacon, {{55, 5}});
  add.field = "default";
  add.request_id = 77;
  const Response first = service.handle(add);
  ASSERT_EQ(first.status, Status::kOk);
  // The duplicate delivery re-collects the original ack — same positions,
  // same beacon ids, and above all no second beacon.
  add.attempt = 1;
  const Response replay = service.handle(add);
  ASSERT_EQ(replay.status, Status::kOk);
  EXPECT_EQ(replay.positions, first.positions);
  EXPECT_EQ(replay.beacon_ids, first.beacon_ids);
  Request snapshot;
  snapshot.endpoint = Endpoint::kSnapshot;
  snapshot.field = "default";
  std::istringstream in(service.handle(snapshot).text);
  EXPECT_EQ(read_field(in).size(), make_field().size() + 1);
}

TEST(Service, AddBeaconRetryBeyondTheWindowIsDedupExpired) {
  ServiceConfig config = test_config();
  config.dedup_window = 2;
  LocalizationService service(config);
  service.add_field("default", make_field());
  for (std::uint64_t id = 1; id <= 3; ++id) {
    Request add = point_request(Endpoint::kAddBeacon, {{double(id), 1}});
    add.field = "default";
    add.request_id = id;
    ASSERT_EQ(service.handle(add).status, Status::kOk);
  }
  // Id 1 was evicted from the 2-entry window: the retry is unanswerable
  // and must be refused, never silently re-applied.
  Request stale = point_request(Endpoint::kAddBeacon, {{1, 1}});
  stale.field = "default";
  stale.request_id = 1;
  stale.attempt = 1;
  EXPECT_EQ(service.handle(stale).status, Status::kDedupExpired);
  // A *first* delivery of a fresh id is never ambiguous: it still applies.
  Request fresh = point_request(Endpoint::kAddBeacon, {{4, 1}});
  fresh.field = "default";
  fresh.request_id = 4;
  EXPECT_EQ(service.handle(fresh).status, Status::kOk);
}

TEST(Service, MutateRecordsTheRequestIdForReplayedDedup) {
  // A replica rebuilt from the mutation log must hold the same dedup state
  // as a replica that saw the live write: the mutate carries the id.
  LocalizationService service(test_config());
  service.handle(install_request(1));
  Request mutate = mutate_request(2, {{20, 20}});
  mutate.request_id = 55;
  ASSERT_EQ(service.handle(mutate).status, Status::kOk);
  // A client retry landing on this replica directly finds the id.
  Request retry = point_request(Endpoint::kAddBeacon, {{20, 20}});
  retry.field = "default";
  retry.request_id = 55;
  retry.attempt = 1;
  const Response deduped = service.handle(retry);
  ASSERT_EQ(deduped.status, Status::kOk);
  EXPECT_EQ(deduped.beacon_ids, std::vector<std::uint32_t>{4u});
  EXPECT_EQ(service.field_version("default"), 2u) << "no second apply";
  // The idempotent re-delivery of the same mutate doesn't re-record.
  ASSERT_EQ(service.handle(mutate).status, Status::kOk);
  EXPECT_EQ(service.field_version("default"), 2u);
}

TEST(Service, SnapshotInstallResetsDedupHistory) {
  LocalizationService service(test_config());
  service.handle(install_request(1));
  Request add = point_request(Endpoint::kAddBeacon, {{20, 20}});
  add.field = "default";
  add.request_id = 66;
  ASSERT_EQ(service.handle(add).status, Status::kOk);
  // A later snapshot install (resync) folds the write into the field text
  // and discards the id history — the retry is now ambiguous.
  ASSERT_EQ(service.handle(install_request(3)).status, Status::kOk);
  Request retry = add;
  retry.attempt = 1;
  EXPECT_EQ(service.handle(retry).status, Status::kDedupExpired);
}

TEST(Service, TooManyProposalsIsBadRequest) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Request request;
  request.endpoint = Endpoint::kPropose;
  request.algorithm = "grid";
  request.count = 1000;
  EXPECT_EQ(service.handle(request).status, Status::kBadRequest);
}

TEST(Service, RejectsInvalidDeploymentName) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  EXPECT_THROW(service.add_field("bad name", make_field()), CheckFailure);
}

}  // namespace
}  // namespace abp::serve
