#include "serve/tcp_transport.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "serve/server.h"

namespace abp::serve {
namespace {

BeaconField make_field() {
  BeaconField field(AABB({0, 0}, {60, 60}));
  field.add({10, 10});
  field.add({30, 10});
  field.add({10, 30});
  return field;
}

ServiceConfig test_config() {
  ServiceConfig config;
  config.lattice_step = 2.0;
  return config;
}

Request localize_request(std::uint64_t seq, Vec2 point) {
  Request request;
  request.seq = seq;
  request.endpoint = Endpoint::kLocalize;
  request.points = {point};
  return request;
}

struct TcpFixture {
  TcpFixture() : service(test_config()), server(service, server_options()) {
    service.add_field("default", make_field());
    transport = std::make_unique<TcpServerTransport>(server);
    transport->start();
  }
  ~TcpFixture() {
    transport->stop();
    server.shutdown();
  }

  static Server::Options server_options() {
    Server::Options options;
    options.workers = 2;
    options.max_batch = 8;
    return options;
  }

  LocalizationService service;
  Server server;
  std::unique_ptr<TcpServerTransport> transport;
};

TEST(TcpTransport, EphemeralPortRoundTrip) {
  TcpFixture fixture;
  ASSERT_NE(fixture.transport->port(), 0);

  TcpClientTransport client("127.0.0.1", fixture.transport->port());
  const Response response = client.roundtrip(localize_request(7, {12, 12}));
  EXPECT_EQ(response.seq, 7u);
  ASSERT_EQ(response.status, Status::kOk) << response.message;
  ASSERT_EQ(response.estimates.size(), 1u);
  EXPECT_GT(response.estimates[0].connected, 0u);
}

TEST(TcpTransport, PipelinedRequestsOnOneConnection) {
  TcpFixture fixture;
  TcpClientTransport client("127.0.0.1", fixture.transport->port());
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    const Response response =
        client.roundtrip(localize_request(seq, {12, 12}));
    EXPECT_EQ(response.seq, seq);
    EXPECT_EQ(response.status, Status::kOk);
  }
}

TEST(TcpTransport, ConcurrentConnections) {
  TcpFixture fixture;
  constexpr int kClients = 4;
  constexpr int kPerClient = 10;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      TcpClientTransport client("127.0.0.1", fixture.transport->port());
      for (int i = 0; i < kPerClient; ++i) {
        const Response response = client.roundtrip(
            localize_request(static_cast<std::uint64_t>(i), {12, 12}));
        if (response.status == Status::kOk) ++ok;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
}

TEST(TcpTransport, MalformedFrameGetsBadRequestAndClose) {
  TcpFixture fixture;
  TcpClientTransport client("127.0.0.1", fixture.transport->port());
  client.send_raw("garbage that is not a frame\n");
  const std::string payload = client.read_payload();
  const auto response = parse_response(payload);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kBadRequest);
  // The server cannot resynchronize a corrupt byte stream — it must close.
  EXPECT_TRUE(client.closed_by_peer());
}

TEST(TcpTransport, ReadTimeoutClosesIdleConnection) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service, TcpFixture::server_options());
  TcpServerTransport::Options options;
  options.read_timeout_s = 0.2;
  TcpServerTransport transport(server, options);
  transport.start();
  {
    TcpClientTransport client("127.0.0.1", transport.port());
    // Send nothing; within ~1s the idle budget expires and the server
    // closes the connection.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    bool closed = false;
    while (std::chrono::steady_clock::now() < deadline) {
      if (client.closed_by_peer()) {
        closed = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(closed);
  }
  transport.stop();
  server.shutdown();
}

TEST(TcpTransport, StopIsIdempotentAndDisconnectsClients) {
  TcpFixture fixture;
  TcpClientTransport client("127.0.0.1", fixture.transport->port());
  const Response response = client.roundtrip(localize_request(1, {12, 12}));
  EXPECT_EQ(response.status, Status::kOk);
  fixture.transport->stop();
  fixture.transport->stop();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool closed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (client.closed_by_peer()) {
      closed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(closed);
}

}  // namespace
}  // namespace abp::serve
