#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/transport.h"

namespace abp::serve {
namespace {

BeaconField make_field() {
  BeaconField field(AABB({0, 0}, {60, 60}));
  field.add({10, 10});
  field.add({30, 10});
  field.add({10, 30});
  return field;
}

ServiceConfig test_config() {
  ServiceConfig config;
  config.lattice_step = 2.0;
  return config;
}

Request localize_request(std::uint64_t seq, Vec2 point) {
  Request request;
  request.seq = seq;
  request.endpoint = Endpoint::kLocalize;
  request.points = {point};
  return request;
}

TEST(Server, LoopbackRoundTrip) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service);
  LoopbackTransport transport(server);

  const Response response = transport.roundtrip(localize_request(5, {12, 12}));
  EXPECT_EQ(response.seq, 5u);
  ASSERT_EQ(response.status, Status::kOk) << response.message;
  ASSERT_EQ(response.estimates.size(), 1u);
  EXPECT_GT(response.estimates[0].connected, 0u);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(Server, UnparseablePayloadGetsBadRequestReply) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service);

  std::vector<std::string> replies;
  server.submit("this is not a request\n",
                [&](std::string payload) { replies.push_back(payload); });
  // The reply is immediate — no pump needed for a parse failure.
  ASSERT_EQ(replies.size(), 1u);
  const auto response = parse_response(replies[0]);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kBadRequest);
  EXPECT_EQ(service.metrics().bad_frames(), 1u);
  EXPECT_EQ(server.requests_served(), 0u);
}

TEST(Server, ManualModeCoalescesPointQueries) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = 0;
  options.max_batch = 4;
  Server server(service, options);

  std::atomic<int> replies{0};
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    server.submit(format_request(localize_request(seq, {12, 12})),
                  [&](std::string) { ++replies; });
  }
  EXPECT_EQ(replies.load(), 0);  // nothing runs before pump()
  server.pump();
  EXPECT_EQ(replies.load(), 10);
  // 10 queued point queries at max_batch=4 → batches of 4, 4, 2.
  EXPECT_EQ(server.batches_executed(), 3u);
  EXPECT_EQ(server.requests_served(), 10u);
  EXPECT_EQ(service.metrics().batches(), 3u);
  EXPECT_EQ(service.metrics().coalesced_requests(), 10u);
}

TEST(Server, NonBatchableRequestsRunIndividually) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.max_batch = 8;
  Server server(service, options);

  Request stats;
  stats.endpoint = Endpoint::kStats;
  stats.seq = 1;
  std::atomic<int> replies{0};
  server.submit(format_request(stats), [&](std::string) { ++replies; });
  server.submit(format_request(stats), [&](std::string) { ++replies; });
  server.pump();
  EXPECT_EQ(replies.load(), 2);
  EXPECT_EQ(server.batches_executed(), 2u);
}

TEST(Server, MixedFieldsDoNotCoalesceAcrossDeployments) {
  LocalizationService service(test_config());
  service.add_field("alpha", make_field());
  service.add_field("beta", make_field());
  Server::Options options;
  options.max_batch = 8;
  Server server(service, options);

  std::atomic<int> replies{0};
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    Request request = localize_request(seq, {12, 12});
    request.field = seq % 2 == 0 ? "alpha" : "beta";
    server.submit(format_request(request), [&](std::string) { ++replies; });
  }
  server.pump();
  EXPECT_EQ(replies.load(), 4);
  // Two batches: the two alpha queries coalesce, the two beta queries
  // coalesce (take_batch_locked pulls same-field queries from anywhere in
  // the queue).
  EXPECT_EQ(server.batches_executed(), 2u);
}

TEST(Server, RepliesPreserveSequenceNumbers) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.max_batch = 16;
  Server server(service, options);

  std::vector<std::uint64_t> seqs;
  for (std::uint64_t seq = 100; seq < 105; ++seq) {
    server.submit(format_request(localize_request(seq, {12, 12})),
                  [&](std::string payload) {
                    const auto response = parse_response(payload);
                    ASSERT_TRUE(response.has_value());
                    seqs.push_back(response->seq);
                  });
  }
  server.pump();
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{100, 101, 102, 103, 104}));
}

TEST(Server, ThreadedModeServesConcurrentClients) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = 4;
  options.max_batch = 8;
  Server server(service, options);
  LoopbackTransport transport(server);

  constexpr int kClients = 8;
  constexpr int kPerClient = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const Response response = transport.roundtrip(
            localize_request(static_cast<std::uint64_t>(c * 1000 + i),
                             {12.0 + c, 12.0 + i % 10}));
        if (response.status == Status::kOk) ++ok;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
  // served_ is bumped after the batch's replies go out, so read it only
  // after shutdown's drain barrier.
  server.shutdown();
  EXPECT_EQ(server.requests_served(),
            static_cast<std::uint64_t>(kClients * kPerClient));
}

TEST(Server, ShutdownDrainsAcceptedThenRejectsNew) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = 2;
  options.max_batch = 4;
  Server server(service, options);

  // Flood the queue, then shut down immediately: every accepted request
  // must still be answered (drain), no reply may be dropped.
  constexpr int kAccepted = 200;
  std::atomic<int> answered{0};
  std::atomic<int> ok{0};
  for (std::uint64_t seq = 1; seq <= kAccepted; ++seq) {
    server.submit(format_request(localize_request(seq, {12, 12})),
                  [&](std::string payload) {
                    const auto response = parse_response(payload);
                    if (response && response->status == Status::kOk) ++ok;
                    ++answered;
                  });
  }
  server.shutdown();
  EXPECT_EQ(answered.load(), kAccepted);
  EXPECT_EQ(ok.load(), kAccepted);

  // Post-shutdown submissions are rejected immediately with kUnavailable.
  std::vector<Response> rejected;
  server.submit(format_request(localize_request(999, {12, 12})),
                [&](std::string payload) {
                  const auto response = parse_response(payload);
                  ASSERT_TRUE(response.has_value());
                  rejected.push_back(*response);
                });
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].status, Status::kUnavailable);
  EXPECT_EQ(rejected[0].seq, 999u);
  EXPECT_TRUE(server.shutting_down());
}

TEST(Server, ManualModeShutdownDrains) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service);

  std::atomic<int> answered{0};
  server.submit(format_request(localize_request(1, {12, 12})),
                [&](std::string) { ++answered; });
  server.shutdown();  // must pump the queued request, not drop it
  EXPECT_EQ(answered.load(), 1);
}

TEST(Server, ShutdownIsIdempotent) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = 2;
  Server server(service, options);
  server.shutdown();
  server.shutdown();
  EXPECT_TRUE(server.shutting_down());
}

TEST(Server, MetricsRecordLatencyAndBytes) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service);
  LoopbackTransport transport(server);

  for (int i = 0; i < 5; ++i) {
    transport.roundtrip(localize_request(static_cast<std::uint64_t>(i),
                                         {12, 12}));
  }
  const EndpointSnapshot snap =
      service.metrics().endpoint_snapshot(Endpoint::kLocalize);
  EXPECT_EQ(snap.requests, 5u);
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_EQ(snap.latency_samples, 5u);
  EXPECT_GT(snap.bytes_in, 0u);
  EXPECT_GT(snap.bytes_out, 0u);
  EXPECT_GE(snap.p99_us, snap.p50_us);
}

TEST(Server, QuotaShedsCarryThePrincipalsOwnRetryAfter) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.quota.rps = 2.0;  // one token every 500 ms
  options.quota.burst = 2.0;
  double now = 0.0;
  options.clock_ms = [&now] { return now; };
  Server server(service, options);

  Request request = localize_request(1, {12, 12});
  request.principal = 7;
  std::vector<Response> responses;
  auto reply = [&](std::string payload) {
    const auto response = parse_response(payload);
    ASSERT_TRUE(response.has_value());
    responses.push_back(*response);
  };
  // Burst capacity 2: two admitted, the third shed without being enqueued.
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    request.seq = seq;
    server.submit(format_request(request), reply);
  }
  ASSERT_EQ(responses.size(), 1u) << "quota shed answers immediately";
  EXPECT_EQ(responses[0].seq, 3u);
  EXPECT_EQ(responses[0].status, Status::kOverloaded);
  EXPECT_TRUE(status_retryable(responses[0].status));
  EXPECT_NE(responses[0].message.find("principal 7"), std::string::npos);
  EXPECT_EQ(responses[0].retry_after_ms, 500u)
      << "hint is this bucket's refill deficit, not a configured constant";

  // Following the hint on the injected clock is admitted again.
  now += responses[0].retry_after_ms;
  request.seq = 4;
  server.submit(format_request(request), reply);
  server.pump();
  ASSERT_EQ(responses.size(), 4u);

  // Accounting: quota sheds ride the overloaded cause, reconciliation
  // holds, and the per-principal counters attribute the noise to tenant 7.
  const ServiceMetrics& metrics = service.metrics();
  EXPECT_EQ(metrics.submitted(), 4u);
  EXPECT_EQ(metrics.completed(), 3u);
  EXPECT_EQ(metrics.shed(Status::kOverloaded), 1u);
  EXPECT_EQ(metrics.quota_sheds(), 1u);
  EXPECT_EQ(metrics.principal_submitted(7), 4u);
  EXPECT_EQ(metrics.principal_quota_sheds(7), 1u);
}

TEST(Server, QuotaIsolatesPrincipalsFromANoisyNeighbor) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.quota.rps = 1.0;
  options.quota.burst = 2.0;
  double now = 0.0;
  options.clock_ms = [&now] { return now; };
  Server server(service, options);

  std::atomic<int> shed{0};
  auto count_sheds = [&](std::string payload) {
    const auto response = parse_response(payload);
    if (response && response->status == Status::kOverloaded) ++shed;
  };
  // Principal 1 floods far past its burst.
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    Request request = localize_request(seq, {12, 12});
    request.principal = 1;
    server.submit(format_request(request), count_sheds);
  }
  EXPECT_EQ(shed.load(), 8);
  // Principal 2's first requests still land in its own full bucket.
  for (std::uint64_t seq = 21; seq <= 22; ++seq) {
    Request request = localize_request(seq, {12, 12});
    request.principal = 2;
    server.submit(format_request(request), count_sheds);
  }
  server.pump();
  EXPECT_EQ(shed.load(), 8) << "the quiet tenant must not be shed";
  EXPECT_EQ(service.metrics().principal_quota_sheds(1), 8u);
  EXPECT_EQ(service.metrics().principal_quota_sheds(2), 0u);
}

TEST(Server, FairDequeueAlternatesAcrossQueuedPrincipals) {
  LocalizationService service(test_config());
  service.add_field("alpha", make_field());
  service.add_field("beta", make_field());
  Server::Options options;
  options.max_batch = 1;  // one request per batch: reply order == dequeue order
  Server server(service, options);

  std::vector<std::uint64_t> order;
  auto record = [&](std::string payload) {
    const auto response = parse_response(payload);
    ASSERT_TRUE(response.has_value());
    order.push_back(response->seq);
  };
  // Tenant 1 floods four requests before tenant 2's two arrive. Distinct
  // fields keep the check independent of same-deployment coalescing.
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    Request request = localize_request(seq, {12, 12});
    request.field = "alpha";
    request.principal = 1;
    server.submit(format_request(request), record);
  }
  for (std::uint64_t seq = 11; seq <= 12; ++seq) {
    Request request = localize_request(seq, {12, 12});
    request.field = "beta";
    request.principal = 2;
    server.submit(format_request(request), record);
  }
  server.pump();
  // Strict FIFO would serve 1,2,3,4 before tenant 2 gets a turn; the
  // rotation interleaves until tenant 2's queue drains, then falls back to
  // FIFO over the remainder.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 11, 2, 12, 3, 4}));
}

TEST(Server, SinglePrincipalFairDequeueReducesToFifo) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.max_batch = 1;
  Server server(service, options);

  std::vector<std::uint64_t> order;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    server.submit(format_request(localize_request(seq, {12, 12})),
                  [&](std::string payload) {
                    order.push_back(parse_response(payload)->seq);
                  });
  }
  server.pump();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(Server, SnapshotExposesAdmissionAndPrincipalCounters) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service);

  Request request = localize_request(1, {12, 12});
  request.principal = 9;
  server.submit(format_request(request), [](std::string) {});
  server.pump();

  const MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.schema(), "abp-serve-stats 1");
  EXPECT_EQ(snap.count("admission.submitted"), 1u);
  EXPECT_EQ(snap.count("admission.completed"), 1u);
  EXPECT_EQ(snap.count("admission.shed-quota"), 0u);
  EXPECT_EQ(snap.count("principal.9.submitted"), 1u);
  EXPECT_EQ(snap.count("endpoint.localize.requests"), 1u);
  // The rendered stats body is exactly the snapshot's text form.
  EXPECT_EQ(service.metrics().render_text(), snap.render_text());
}

TEST(Server, LoopbackFrameExchangeRejectsCorruptFrames) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service);
  LoopbackTransport transport(server);

  std::string frame = encode_frame(format_request(localize_request(1, {1, 1})));
  frame[0] = 'X';
  const std::string reply_frame = transport.roundtrip_frame(frame);
  FrameDecoder decoder;
  decoder.feed(reply_frame);
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  const auto response = parse_response(*payload);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kBadRequest);
  EXPECT_EQ(service.metrics().bad_frames(), 1u);
}

}  // namespace
}  // namespace abp::serve
