#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/transport.h"

namespace abp::serve {
namespace {

BeaconField make_field() {
  BeaconField field(AABB({0, 0}, {60, 60}));
  field.add({10, 10});
  field.add({30, 10});
  field.add({10, 30});
  return field;
}

ServiceConfig test_config() {
  ServiceConfig config;
  config.lattice_step = 2.0;
  return config;
}

Request localize_request(std::uint64_t seq, Vec2 point) {
  Request request;
  request.seq = seq;
  request.endpoint = Endpoint::kLocalize;
  request.points = {point};
  return request;
}

TEST(Server, LoopbackRoundTrip) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service);
  LoopbackTransport transport(server);

  const Response response = transport.roundtrip(localize_request(5, {12, 12}));
  EXPECT_EQ(response.seq, 5u);
  ASSERT_EQ(response.status, Status::kOk) << response.message;
  ASSERT_EQ(response.estimates.size(), 1u);
  EXPECT_GT(response.estimates[0].connected, 0u);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(Server, UnparseablePayloadGetsBadRequestReply) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service);

  std::vector<std::string> replies;
  server.submit("this is not a request\n",
                [&](std::string payload) { replies.push_back(payload); });
  // The reply is immediate — no pump needed for a parse failure.
  ASSERT_EQ(replies.size(), 1u);
  const auto response = parse_response(replies[0]);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kBadRequest);
  EXPECT_EQ(service.metrics().bad_frames(), 1u);
  EXPECT_EQ(server.requests_served(), 0u);
}

TEST(Server, ManualModeCoalescesPointQueries) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = 0;
  options.max_batch = 4;
  Server server(service, options);

  std::atomic<int> replies{0};
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    server.submit(format_request(localize_request(seq, {12, 12})),
                  [&](std::string) { ++replies; });
  }
  EXPECT_EQ(replies.load(), 0);  // nothing runs before pump()
  server.pump();
  EXPECT_EQ(replies.load(), 10);
  // 10 queued point queries at max_batch=4 → batches of 4, 4, 2.
  EXPECT_EQ(server.batches_executed(), 3u);
  EXPECT_EQ(server.requests_served(), 10u);
  EXPECT_EQ(service.metrics().batches(), 3u);
  EXPECT_EQ(service.metrics().coalesced_requests(), 10u);
}

TEST(Server, NonBatchableRequestsRunIndividually) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.max_batch = 8;
  Server server(service, options);

  Request stats;
  stats.endpoint = Endpoint::kStats;
  stats.seq = 1;
  std::atomic<int> replies{0};
  server.submit(format_request(stats), [&](std::string) { ++replies; });
  server.submit(format_request(stats), [&](std::string) { ++replies; });
  server.pump();
  EXPECT_EQ(replies.load(), 2);
  EXPECT_EQ(server.batches_executed(), 2u);
}

TEST(Server, MixedFieldsDoNotCoalesceAcrossDeployments) {
  LocalizationService service(test_config());
  service.add_field("alpha", make_field());
  service.add_field("beta", make_field());
  Server::Options options;
  options.max_batch = 8;
  Server server(service, options);

  std::atomic<int> replies{0};
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    Request request = localize_request(seq, {12, 12});
    request.field = seq % 2 == 0 ? "alpha" : "beta";
    server.submit(format_request(request), [&](std::string) { ++replies; });
  }
  server.pump();
  EXPECT_EQ(replies.load(), 4);
  // Two batches: the two alpha queries coalesce, the two beta queries
  // coalesce (take_batch_locked pulls same-field queries from anywhere in
  // the queue).
  EXPECT_EQ(server.batches_executed(), 2u);
}

TEST(Server, RepliesPreserveSequenceNumbers) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.max_batch = 16;
  Server server(service, options);

  std::vector<std::uint64_t> seqs;
  for (std::uint64_t seq = 100; seq < 105; ++seq) {
    server.submit(format_request(localize_request(seq, {12, 12})),
                  [&](std::string payload) {
                    const auto response = parse_response(payload);
                    ASSERT_TRUE(response.has_value());
                    seqs.push_back(response->seq);
                  });
  }
  server.pump();
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{100, 101, 102, 103, 104}));
}

TEST(Server, ThreadedModeServesConcurrentClients) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = 4;
  options.max_batch = 8;
  Server server(service, options);
  LoopbackTransport transport(server);

  constexpr int kClients = 8;
  constexpr int kPerClient = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const Response response = transport.roundtrip(
            localize_request(static_cast<std::uint64_t>(c * 1000 + i),
                             {12.0 + c, 12.0 + i % 10}));
        if (response.status == Status::kOk) ++ok;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
  // served_ is bumped after the batch's replies go out, so read it only
  // after shutdown's drain barrier.
  server.shutdown();
  EXPECT_EQ(server.requests_served(),
            static_cast<std::uint64_t>(kClients * kPerClient));
}

TEST(Server, ShutdownDrainsAcceptedThenRejectsNew) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = 2;
  options.max_batch = 4;
  Server server(service, options);

  // Flood the queue, then shut down immediately: every accepted request
  // must still be answered (drain), no reply may be dropped.
  constexpr int kAccepted = 200;
  std::atomic<int> answered{0};
  std::atomic<int> ok{0};
  for (std::uint64_t seq = 1; seq <= kAccepted; ++seq) {
    server.submit(format_request(localize_request(seq, {12, 12})),
                  [&](std::string payload) {
                    const auto response = parse_response(payload);
                    if (response && response->status == Status::kOk) ++ok;
                    ++answered;
                  });
  }
  server.shutdown();
  EXPECT_EQ(answered.load(), kAccepted);
  EXPECT_EQ(ok.load(), kAccepted);

  // Post-shutdown submissions are rejected immediately with kUnavailable.
  std::vector<Response> rejected;
  server.submit(format_request(localize_request(999, {12, 12})),
                [&](std::string payload) {
                  const auto response = parse_response(payload);
                  ASSERT_TRUE(response.has_value());
                  rejected.push_back(*response);
                });
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].status, Status::kUnavailable);
  EXPECT_EQ(rejected[0].seq, 999u);
  EXPECT_TRUE(server.shutting_down());
}

TEST(Server, ManualModeShutdownDrains) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service);

  std::atomic<int> answered{0};
  server.submit(format_request(localize_request(1, {12, 12})),
                [&](std::string) { ++answered; });
  server.shutdown();  // must pump the queued request, not drop it
  EXPECT_EQ(answered.load(), 1);
}

TEST(Server, ShutdownIsIdempotent) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = 2;
  Server server(service, options);
  server.shutdown();
  server.shutdown();
  EXPECT_TRUE(server.shutting_down());
}

TEST(Server, MetricsRecordLatencyAndBytes) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service);
  LoopbackTransport transport(server);

  for (int i = 0; i < 5; ++i) {
    transport.roundtrip(localize_request(static_cast<std::uint64_t>(i),
                                         {12, 12}));
  }
  const EndpointSnapshot snap =
      service.metrics().endpoint_snapshot(Endpoint::kLocalize);
  EXPECT_EQ(snap.requests, 5u);
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_EQ(snap.latency_samples, 5u);
  EXPECT_GT(snap.bytes_in, 0u);
  EXPECT_GT(snap.bytes_out, 0u);
  EXPECT_GE(snap.p99_us, snap.p50_us);
}

TEST(Server, LoopbackFrameExchangeRejectsCorruptFrames) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service);
  LoopbackTransport transport(server);

  std::string frame = encode_frame(format_request(localize_request(1, {1, 1})));
  frame[0] = 'X';
  const std::string reply_frame = transport.roundtrip_frame(frame);
  FrameDecoder decoder;
  decoder.feed(reply_frame);
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  const auto response = parse_response(*payload);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kBadRequest);
  EXPECT_EQ(service.metrics().bad_frames(), 1u);
}

}  // namespace
}  // namespace abp::serve
