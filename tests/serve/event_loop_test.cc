/// Event-loop serving stack, bottom-up: the `EventLoop` primitive
/// (posting, fd dispatch, stop-drain), the transport-agnostic `Connection`
/// state machine (ordered release, in-flight shedding, corrupt framing,
/// write watermarks, wake discipline), and the `EpollServerTransport` over
/// real sockets (round trips, shard fan-out, idle timeouts, the
/// open-connection gauge the leak probes rely on).
#include "serve/event_loop.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/connection.h"
#include "serve/fault_transport.h"
#include "serve/server.h"
#include "serve/server_transport.h"
#include "serve/tcp_transport.h"

namespace abp::serve {
namespace {

BeaconField make_field() {
  BeaconField field(AABB({0, 0}, {60, 60}));
  field.add({10, 10});
  field.add({30, 10});
  field.add({10, 30});
  return field;
}

ServiceConfig test_config() {
  ServiceConfig config;
  config.lattice_step = 2.0;
  return config;
}

Request localize_request(std::uint64_t seq) {
  Request request;
  request.seq = seq;
  request.endpoint = Endpoint::kLocalize;
  request.points = {{12, 12}};
  return request;
}

std::string request_frame(std::uint64_t seq) {
  return encode_frame(format_request(localize_request(seq)));
}

// ---- EventLoop primitive -----------------------------------------------

TEST(EventLoop, PostedTasksRunOnTheLoopThreadInOrder) {
  EventLoop loop;
  std::vector<int> order;
  std::thread::id task_thread;
  std::thread runner([&loop] { loop.run({}, 50); });
  loop.post([&order, &task_thread] {
    order.push_back(1);
    task_thread = std::this_thread::get_id();
  });
  loop.post([&order] { order.push_back(2); });
  loop.post([&order, &loop] {
    order.push_back(3);
    loop.stop();
  });
  const std::thread::id loop_thread = runner.get_id();
  runner.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(task_thread, loop_thread);
}

TEST(EventLoop, FdReadinessDispatchesTheRegisteredHandler) {
  int pipe_fds[2];
  ASSERT_EQ(::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC), 0);
  EventLoop loop;
  std::string received;
  loop.add_fd(pipe_fds[0], EPOLLIN, [&](std::uint32_t) {
    char buf[64];
    const ssize_t n = ::read(pipe_fds[0], buf, sizeof buf);
    if (n > 0) received.assign(buf, static_cast<std::size_t>(n));
    loop.stop();
  });
  std::thread runner([&loop] { loop.run({}, 50); });
  ASSERT_EQ(::write(pipe_fds[1], "ping", 4), 4);
  runner.join();
  EXPECT_EQ(received, "ping");
  loop.remove_fd(pipe_fds[0]);
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

TEST(EventLoop, TasksPostedWhileStoppingAreDrainedNotDropped) {
  // A task posted from within the final dispatch round (after stop() is
  // already in flight) must still run — the epoll transport relies on this
  // to avoid leaking connection hand-offs that race shutdown.
  EventLoop loop;
  std::atomic<bool> late_task_ran{false};
  std::thread runner([&loop] { loop.run({}, 50); });
  loop.post([&loop, &late_task_ran] {
    loop.post([&late_task_ran] { late_task_ran = true; });
    loop.stop();
  });
  runner.join();
  EXPECT_TRUE(late_task_ran.load());
}

TEST(EventLoop, TickRunsWithoutFdActivity) {
  EventLoop loop;
  int ticks = 0;
  loop.run(
      [&] {
        if (++ticks >= 3) loop.stop();
      },
      5);
  EXPECT_GE(ticks, 3);
}

// ---- Connection state machine ------------------------------------------

/// Manual-mode server on a manual clock so every completion is explicit.
struct ConnectionRig {
  ManualClock clock;
  LocalizationService service{test_config()};
  Server server;

  ConnectionRig() : server(service, options(clock)) {
    service.add_field("default", make_field());
  }

  static Server::Options options(ManualClock& clock) {
    Server::Options options;
    options.workers = 0;
    options.max_batch = 8;
    options.clock_ms = clock.fn();
    return options;
  }

  std::shared_ptr<Connection> connect(Connection::Limits limits,
                                      std::function<void()> wake = {}) {
    return std::make_shared<Connection>(1, server, limits, std::move(wake));
  }
};

std::vector<Response> decode_responses(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes);
  std::vector<Response> responses;
  while (const auto payload = decoder.next()) {
    const auto response = parse_response(*payload);
    EXPECT_TRUE(response.has_value());
    if (response) responses.push_back(*response);
  }
  return responses;
}

TEST(Connection, ReleasesRepliesInTicketOrderAcrossOutOfOrderCompletion) {
  ConnectionRig rig;
  Connection::Limits limits;
  limits.max_inflight = 1;
  const auto conn = rig.connect(limits);

  // Two frames in one chunk: the first takes ticket 0 and parks in the
  // manual server's queue; the second exceeds the cap and is shed — its
  // `overloaded` reply completes ticket 1 *immediately*, out of order.
  conn->on_bytes(request_frame(1) + request_frame(2));
  EXPECT_EQ(conn->in_flight(), 1u);
  // Ticket 1 is done but ticket 0 is not: nothing may be released yet.
  EXPECT_FALSE(conn->has_writable());
  EXPECT_FALSE(conn->drained());

  rig.server.pump();  // completes ticket 0
  ASSERT_TRUE(conn->has_writable());
  std::string out;
  conn->fetch_writable(out);
  const std::vector<Response> responses = decode_responses(out);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].seq, 1u);
  EXPECT_EQ(responses[0].status, Status::kOk);
  EXPECT_EQ(responses[1].seq, 2u);
  EXPECT_EQ(responses[1].status, Status::kOverloaded);

  // Shedding went through the server: the accounting identity holds.
  EXPECT_EQ(rig.service.metrics().shed(Status::kOverloaded), 1u);
  EXPECT_EQ(rig.service.metrics().submitted(),
            rig.service.metrics().completed() +
                rig.service.metrics().shed_total());

  EXPECT_FALSE(conn->drained());  // bytes fetched but not yet acknowledged
  conn->wrote(out.size());
  EXPECT_TRUE(conn->drained());
}

TEST(Connection, CorruptFramingAnswersBadRequestAfterPendingReplies) {
  ConnectionRig rig;
  const auto conn = rig.connect({});

  conn->on_bytes(request_frame(1));
  conn->on_bytes("this is not a frame\n");
  EXPECT_TRUE(conn->corrupt());
  EXPECT_FALSE(conn->want_read());  // unsyncable: stop reading immediately

  rig.server.pump();
  std::string out;
  conn->fetch_writable(out);
  const std::vector<Response> responses = decode_responses(out);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, Status::kOk);  // ordered before the error
  EXPECT_EQ(responses[1].status, Status::kBadRequest);
  conn->wrote(out.size());
  EXPECT_TRUE(conn->drained());
}

TEST(Connection, WriteWatermarksPauseAndResumeReading) {
  ConnectionRig rig;
  Connection::Limits limits;
  limits.write_high_watermark = 1;  // any backlog pauses reading
  limits.write_low_watermark = 0;   // resume only when fully acknowledged
  const auto conn = rig.connect(limits);

  conn->on_bytes(request_frame(1));
  EXPECT_TRUE(conn->want_read());  // nothing written yet
  rig.server.pump();
  EXPECT_GT(conn->outstanding_write_bytes(), 1u);
  EXPECT_FALSE(conn->want_read());  // above the high watermark

  std::string out;
  conn->fetch_writable(out);
  // Fetching hands bytes to the transport but they still count against the
  // watermark until the socket accepts them.
  EXPECT_FALSE(conn->want_read());
  conn->wrote(out.size() - 1);
  EXPECT_FALSE(conn->want_read());  // one unacknowledged byte > low mark
  conn->wrote(1);
  EXPECT_TRUE(conn->want_read());
  EXPECT_EQ(conn->outstanding_write_bytes(), 0u);
}

TEST(Connection, WakeFiresOnlyOnEmptyToNonEmptyTransition) {
  ConnectionRig rig;
  int wakes = 0;
  const auto conn = rig.connect({}, [&wakes] { ++wakes; });

  conn->on_bytes(request_frame(1) + request_frame(2));
  EXPECT_EQ(wakes, 0);
  rig.server.pump();
  // Two replies landed back-to-back; only the first found the buffer empty.
  EXPECT_EQ(wakes, 1);

  std::string out;
  conn->fetch_writable(out);
  conn->wrote(out.size());
  conn->on_bytes(request_frame(3));
  rig.server.pump();
  EXPECT_EQ(wakes, 2);
}

TEST(Connection, DisarmedWakeMakesLateCompletionsHarmless) {
  ConnectionRig rig;
  int wakes = 0;
  auto conn = rig.connect({}, [&wakes] { ++wakes; });

  conn->on_bytes(request_frame(1));
  // The transport tears the connection down while the request is still
  // queued in the server — exactly what happens when a socket dies first.
  conn->disarm_wake();
  const std::weak_ptr<Connection> probe = conn;
  conn.reset();
  EXPECT_FALSE(probe.expired());  // the queued reply callback keeps it alive

  rig.server.pump();  // completes into the orphan: no wake, no crash
  EXPECT_EQ(wakes, 0);
  EXPECT_TRUE(probe.expired());  // the last reference died with the reply
  EXPECT_EQ(rig.service.metrics().submitted(),
            rig.service.metrics().completed() +
                rig.service.metrics().shed_total());
}

TEST(Connection, TeardownWithReplyParkedBehindUnreleasedTicketIsOrphaned) {
  // The ordered-release orphan path: ticket 1 has already completed into
  // the ready map (parked behind unanswered ticket 0) when the transport
  // tears the connection down. The parked reply must not pin the
  // connection forever, and ticket 0's late completion must release both
  // tickets into the orphan without touching freed transport state.
  ConnectionRig rig;
  int wakes = 0;
  Connection::Limits limits;
  limits.max_inflight = 1;
  auto conn = rig.connect(limits, [&wakes] { ++wakes; });

  // Frame 1 takes ticket 0 and parks in the manual server; frame 2 exceeds
  // the in-flight cap and its `overloaded` reply completes ticket 1
  // immediately — out of order, so it waits in the ready map.
  conn->on_bytes(request_frame(1) + request_frame(2));
  EXPECT_EQ(conn->in_flight(), 1u);
  EXPECT_FALSE(conn->has_writable());

  // Socket dies now: one ticket done-but-unreleased, one still queued.
  conn->disarm_wake();
  const std::weak_ptr<Connection> probe = conn;
  conn.reset();
  EXPECT_FALSE(probe.expired())
      << "ticket 0's queued reply callback must keep the orphan alive";

  rig.server.pump();  // ticket 0 completes, releasing both into the orphan
  EXPECT_EQ(wakes, 0);
  EXPECT_TRUE(probe.expired())
      << "releasing the parked ticket must not leak the connection";
  EXPECT_EQ(rig.service.metrics().submitted(),
            rig.service.metrics().completed() +
                rig.service.metrics().shed_total());
}

// ---- EpollServerTransport over real sockets ----------------------------

TEST(TransportKindTest, NamesRoundTrip) {
  EXPECT_EQ(transport_kind_from_name("threaded"), TransportKind::kThreaded);
  EXPECT_EQ(transport_kind_from_name("epoll"), TransportKind::kEpoll);
  EXPECT_FALSE(transport_kind_from_name("iocp").has_value());
  EXPECT_STREQ(transport_kind_name(TransportKind::kThreaded), "threaded");
  EXPECT_STREQ(transport_kind_name(TransportKind::kEpoll), "epoll");
}

struct EpollFixture {
  explicit EpollFixture(TransportOptions options = shard_options())
      : service(test_config()), server(service, server_options()) {
    service.add_field("default", make_field());
    transport = make_server_transport(TransportKind::kEpoll, server, options);
    transport->start();
  }
  ~EpollFixture() {
    transport->stop();
    server.shutdown();
  }

  static Server::Options server_options() {
    Server::Options options;
    options.workers = 2;
    options.max_batch = 8;
    return options;
  }

  static TransportOptions shard_options() {
    TransportOptions options;
    options.event_shards = 2;
    return options;
  }

  LocalizationService service;
  Server server;
  std::unique_ptr<ServerTransport> transport;
};

TEST(EpollTransport, EphemeralPortRoundTrip) {
  EpollFixture fixture;
  ASSERT_NE(fixture.transport->port(), 0);
  EXPECT_STREQ(fixture.transport->name(), "epoll");

  TcpClientTransport client("127.0.0.1", fixture.transport->port());
  const Response response = client.roundtrip(localize_request(7));
  EXPECT_EQ(response.seq, 7u);
  ASSERT_EQ(response.status, Status::kOk) << response.message;
  ASSERT_EQ(response.estimates.size(), 1u);
}

TEST(EpollTransport, PipelinedRequestsFlushInOrder) {
  EpollFixture fixture;
  TcpClientTransport client("127.0.0.1", fixture.transport->port());
  std::vector<std::uint64_t> seqs;
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    client.send_async(localize_request(seq), [&seqs](std::string frame) {
      FrameDecoder decoder;
      decoder.feed(frame);
      const auto payload = decoder.next();
      ASSERT_TRUE(payload.has_value());
      const auto response = parse_response(*payload);
      ASSERT_TRUE(response.has_value());
      EXPECT_EQ(response->status, Status::kOk);
      seqs.push_back(response->seq);
    });
  }
  client.flush();
  ASSERT_EQ(seqs.size(), 10u);
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    EXPECT_EQ(seqs[seq - 1], seq);
  }
}

TEST(EpollTransport, ConcurrentConnectionsAcrossShards) {
  EpollFixture fixture;
  constexpr int kClients = 8;  // round-robins across both shards
  constexpr int kPerClient = 5;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&fixture, &ok] {
      TcpClientTransport client("127.0.0.1", fixture.transport->port());
      for (int i = 0; i < kPerClient; ++i) {
        const Response response =
            client.roundtrip(localize_request(static_cast<std::uint64_t>(i)));
        if (response.status == Status::kOk) ++ok;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
  EXPECT_EQ(fixture.transport->connections_accepted(),
            static_cast<std::uint64_t>(kClients));
}

TEST(EpollTransport, MalformedFrameGetsBadRequestAndClose) {
  EpollFixture fixture;
  TcpClientTransport client("127.0.0.1", fixture.transport->port());
  client.send_raw("garbage that is not a frame\n");
  const auto response = parse_response(client.read_payload());
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kBadRequest);
  EXPECT_TRUE(client.closed_by_peer());
}

TEST(EpollTransport, IdleConnectionTimesOut) {
  LocalizationService service(test_config());
  service.add_field("default", make_field());
  Server server(service, EpollFixture::server_options());
  TransportOptions options;
  options.read_timeout_s = 0.2;
  const auto transport =
      make_server_transport(TransportKind::kEpoll, server, options);
  transport->start();
  {
    TcpClientTransport client("127.0.0.1", transport->port());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    bool closed = false;
    while (std::chrono::steady_clock::now() < deadline && !closed) {
      closed = client.closed_by_peer();
      if (!closed) std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(closed);
  }
  transport->stop();
  server.shutdown();
}

TEST(EpollTransport, OpenConnectionGaugeFallsToZeroWhenClientsLeave) {
  EpollFixture fixture;
  {
    std::vector<std::unique_ptr<TcpClientTransport>> clients;
    for (int c = 0; c < 3; ++c) {
      clients.push_back(std::make_unique<TcpClientTransport>(
          "127.0.0.1", fixture.transport->port()));
      EXPECT_EQ(clients.back()->roundtrip(localize_request(1)).status,
                Status::kOk);
    }
    EXPECT_EQ(fixture.transport->open_connections(), 3u);
  }
  // All client sockets closed: the gauge must reach zero without stop().
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fixture.transport->open_connections() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fixture.transport->open_connections(), 0u);
  EXPECT_EQ(fixture.transport->connections_accepted(), 3u);
}

TEST(EpollTransport, StopIsIdempotentAndDisconnectsClients) {
  EpollFixture fixture;
  TcpClientTransport client("127.0.0.1", fixture.transport->port());
  EXPECT_EQ(client.roundtrip(localize_request(1)).status, Status::kOk);
  fixture.transport->stop();
  fixture.transport->stop();
  EXPECT_EQ(fixture.transport->open_connections(), 0u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool closed = false;
  while (std::chrono::steady_clock::now() < deadline && !closed) {
    closed = client.closed_by_peer();
    if (!closed) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(closed);
}

}  // namespace
}  // namespace abp::serve
