#include "cluster/mutation_log.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.h"
#include "io/field_io.h"
#include "cluster_harness.h"

namespace abp::cluster {
namespace {

std::string field_text() {
  std::ostringstream out;
  write_field(out, harness_field());
  return out.str();
}

TEST(MutationLog, InstallAssignsMonotonicVersionsAndAcks) {
  MutationLog log;
  EXPECT_EQ(log.version("default"), 0u);
  EXPECT_EQ(log.last_acked("default"), 0u);
  EXPECT_EQ(log.install("default", field_text()), 1u);
  EXPECT_EQ(log.version("default"), 1u);
  EXPECT_EQ(log.last_acked("default"), 1u)
      << "reads fence at the install version before any write";
  EXPECT_EQ(log.install("default", field_text()), 2u);
  EXPECT_EQ(log.version("default"), 2u);
  EXPECT_EQ(log.names(), std::vector<std::string>{"default"});
}

TEST(MutationLog, InstallKeepsTheSnapshotTextVerbatim) {
  MutationLog log;
  log.install("default", field_text());
  const MutationLog::Snapshot snapshot = log.snapshot("default");
  EXPECT_EQ(snapshot.text, field_text());
  EXPECT_EQ(snapshot.version, 1u);
}

TEST(MutationLog, AppendClampsAppliesAndAllocatesSequentialIds) {
  MutationLog log;
  log.install("default", field_text());
  // harness_field() has 4 beacons (ids 0..3); the next id is 4.
  const MutationLog::AppendResult applied =
      log.append("default", {{20, 20}, {99, -5}});
  EXPECT_EQ(applied.version, 2u);
  ASSERT_EQ(applied.positions.size(), 2u);
  ASSERT_EQ(applied.beacon_ids.size(), 2u);
  EXPECT_EQ(applied.positions[0], Vec2(20, 20));
  EXPECT_EQ(applied.positions[1], Vec2(60, 0)) << "out-of-bounds clamps";
  EXPECT_EQ(applied.beacon_ids[0], 4u);
  EXPECT_EQ(applied.beacon_ids[1], 5u);
  EXPECT_EQ(log.version("default"), 2u);
  EXPECT_EQ(log.last_acked("default"), 1u)
      << "append must not advance the read fence before quorum ack";
}

TEST(MutationLog, SnapshotTextMatchesAnEquallyMutatedField) {
  MutationLog log;
  log.install("default", field_text());
  log.append("default", {{20, 20}});
  log.append("default", {{5, 50}});

  BeaconField expected = harness_field();
  expected.add({20, 20});
  expected.add({5, 50});
  std::ostringstream out;
  write_field(out, expected);
  EXPECT_EQ(log.snapshot("default").text, out.str())
      << "the log's apply must be byte-identical to a replica's";
  EXPECT_EQ(log.snapshot("default").version, 3u);
}

TEST(MutationLog, SuffixAnswersReplayVsResync) {
  MutationLog log(/*retain=*/4);
  log.install("default", field_text());          // v1
  for (int i = 0; i < 6; ++i) {
    log.append("default", {{double(i + 1), 1}});  // v2..v7, retains v4..v7
  }
  // Current (and ahead): nothing to replay.
  ASSERT_TRUE(log.suffix("default", 7).has_value());
  EXPECT_TRUE(log.suffix("default", 7)->empty());
  EXPECT_TRUE(log.suffix("default", 9)->empty());
  // Within the window: the exact missing entries, oldest first.
  const auto replay = log.suffix("default", 4);
  ASSERT_TRUE(replay.has_value());
  ASSERT_EQ(replay->size(), 3u);
  EXPECT_EQ((*replay)[0].version, 5u);
  EXPECT_EQ((*replay)[2].version, 7u);
  EXPECT_EQ((*replay)[0].points, std::vector<Vec2>({{4, 1}}));
  // Exactly at the window edge (oldest retained is v4 = have+1).
  ASSERT_TRUE(log.suffix("default", 3).has_value());
  EXPECT_EQ(log.suffix("default", 3)->size(), 4u);
  // Behind the window: full resync required.
  EXPECT_FALSE(log.suffix("default", 2).has_value());
  EXPECT_FALSE(log.suffix("default", 0).has_value());
  // Unknown deployment: resync (which will fail upstream, but never replay).
  EXPECT_FALSE(log.suffix("ghost", 0).has_value());
}

TEST(MutationLog, InstallSubsumesRetainedEntries) {
  MutationLog log;
  log.install("default", field_text());  // v1
  log.append("default", {{20, 20}});     // v2
  log.install("default", field_text());  // v3, clears the log
  // A replica at v2 can no longer replay — the entries are gone.
  EXPECT_FALSE(log.suffix("default", 2).has_value());
  ASSERT_TRUE(log.suffix("default", 3).has_value());
  EXPECT_TRUE(log.suffix("default", 3)->empty());
}

TEST(MutationLog, RecordAckedIsMonotonic) {
  MutationLog log;
  log.install("default", field_text());  // v1, acked 1
  log.append("default", {{20, 20}});     // v2
  log.append("default", {{21, 21}});     // v3
  log.record_acked("default", 3);
  EXPECT_EQ(log.last_acked("default"), 3u);
  log.record_acked("default", 2);  // stale ack arrives late
  EXPECT_EQ(log.last_acked("default"), 3u);
  log.record_acked("ghost", 9);  // unknown deployment is a no-op
  EXPECT_EQ(log.last_acked("ghost"), 0u);
}

TEST(MutationLog, AppendToUnknownDeploymentThrows) {
  MutationLog log;
  EXPECT_THROW(log.append("ghost", {{1, 1}}), CheckFailure);
  EXPECT_THROW(log.snapshot("ghost"), CheckFailure);
}

TEST(MutationLog, DedupLookupAnswersTheLoggedWrite) {
  MutationLog log;
  log.install("default", field_text());                       // v1
  const auto applied = log.append("default", {{20, 20}}, 77);  // v2
  // Unacked until quorum: the hit carries the logged apply so a retry can
  // re-fan it out instead of appending a second beacon.
  const auto hit = log.dedup_lookup("default", 77);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->version, 2u);
  EXPECT_EQ(hit->positions, applied.positions);
  EXPECT_EQ(hit->beacon_ids, applied.beacon_ids);
  EXPECT_FALSE(hit->acked);
  log.record_acked("default", 2);
  EXPECT_TRUE(log.dedup_lookup("default", 77)->acked);
  // Unknown id / deployment: miss, and the index is still complete.
  EXPECT_FALSE(log.dedup_lookup("default", 78).has_value());
  EXPECT_FALSE(log.dedup_lookup("ghost", 77).has_value());
  EXPECT_TRUE(log.dedup_complete("default"));
  EXPECT_TRUE(log.dedup_complete("ghost")) << "vacuously complete";
}

TEST(MutationLog, IdFreeAppendsStayOutOfTheDedupIndex) {
  MutationLog log;
  log.install("default", field_text());
  log.append("default", {{20, 20}});  // id 0 = pre-dedup client
  EXPECT_FALSE(log.dedup_lookup("default", 0).has_value());
  EXPECT_TRUE(log.dedup_complete("default"));
}

TEST(MutationLog, EvictionFlipsDedupCompleteForever) {
  MutationLog log(/*retain=*/2);
  log.install("default", field_text());       // v1
  log.append("default", {{1, 1}}, 101);       // v2
  log.append("default", {{2, 1}}, 102);       // v3
  EXPECT_TRUE(log.dedup_complete("default"));
  log.append("default", {{3, 1}}, 103);       // v4 evicts v2 (and id 101)
  EXPECT_FALSE(log.dedup_lookup("default", 101).has_value());
  ASSERT_TRUE(log.dedup_lookup("default", 102).has_value());
  EXPECT_FALSE(log.dedup_complete("default"))
      << "once anything is evicted, an unknown retry id is ambiguous";
  // The evicted-window entries that remain still resolve correctly.
  EXPECT_EQ(log.dedup_lookup("default", 103)->version, 4u);
}

TEST(MutationLog, ReinstallClearsDedupHistory) {
  MutationLog log;
  log.install("default", field_text());   // v1
  log.append("default", {{1, 1}}, 55);    // v2
  log.install("default", field_text());   // v3, clears entries + index
  EXPECT_FALSE(log.dedup_lookup("default", 55).has_value());
  EXPECT_FALSE(log.dedup_complete("default"))
      << "the discarded history may have held ids";
}

TEST(MutationLog, AppendingTheSameIdTwiceIsACallerBug) {
  MutationLog log;
  log.install("default", field_text());
  log.append("default", {{1, 1}}, 42);
  // The router must dedup-lookup before appending; reaching append with a
  // live id means that check was skipped.
  EXPECT_THROW(log.append("default", {{2, 2}}, 42), CheckFailure);
}

}  // namespace
}  // namespace abp::cluster
