#include "cluster/ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace abp::cluster {
namespace {

TEST(HashRing, OwnersAreDeterministicAndDistinct) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("b");
  ring.add_node("c");
  const std::vector<std::string> first = ring.owners("deploy", 2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_NE(first[0], first[1]);
  // Pure function of (node set, key): identical on every call and on a
  // freshly built ring.
  EXPECT_EQ(ring.owners("deploy", 2), first);
  HashRing rebuilt;
  rebuilt.add_node("c");
  rebuilt.add_node("a");
  rebuilt.add_node("b");
  EXPECT_EQ(rebuilt.owners("deploy", 2), first);
}

TEST(HashRing, ReplicasClampToNodeCount) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("b");
  const std::vector<std::string> owners = ring.owners("key", 5);
  EXPECT_EQ(owners.size(), 2u);
  EXPECT_TRUE(ring.owners("key", 0).empty());
}

TEST(HashRing, EmptyRingYieldsNoOwners) {
  const HashRing ring;
  EXPECT_TRUE(ring.owners("key", 1).empty());
  EXPECT_EQ(ring.node_count(), 0u);
}

TEST(HashRing, ContainsAndRemove) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("b");
  EXPECT_TRUE(ring.contains("a"));
  ring.remove_node("a");
  EXPECT_FALSE(ring.contains("a"));
  EXPECT_EQ(ring.node_count(), 1u);
  // Every key now lands on the sole survivor.
  EXPECT_EQ(ring.owners("anything", 1), std::vector<std::string>{"b"});
}

TEST(HashRing, RemovalOnlyRemapsKeysOwnedByTheRemovedNode) {
  HashRing ring;
  for (const char* node : {"a", "b", "c", "d"}) ring.add_node(node);
  std::map<std::string, std::string> before;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    before[key] = ring.owners(key, 1)[0];
  }
  ring.remove_node("c");
  for (const auto& [key, owner] : before) {
    if (owner == "c") continue;  // only these may move
    EXPECT_EQ(ring.owners(key, 1)[0], owner) << key;
  }
}

TEST(HashRing, VirtualNodesSpreadLoad) {
  HashRing ring(64);
  ring.add_node("a");
  ring.add_node("b");
  ring.add_node("c");
  std::map<std::string, int> counts;
  for (int i = 0; i < 300; ++i) {
    counts[ring.owners("key-" + std::to_string(i), 1)[0]]++;
  }
  // Each backend owns a nontrivial share; exact split is hash-dependent.
  for (const char* node : {"a", "b", "c"}) {
    EXPECT_GT(counts[node], 30) << node;
  }
}

TEST(HashRing, DuplicateAddIsIdempotent) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("a");
  EXPECT_EQ(ring.node_count(), 1u);
}

TEST(HashRing, InsertionOrderNeverChangesPlacement) {
  // Vnode-point collisions are resolved by name, not by who inserted
  // first: any permutation of adds — including interleaved removes and
  // re-adds — must yield the identical owner table. This is what makes a
  // live membership plane safe: the ring a joiner computes equals the ring
  // the router computed, whatever order their histories ran in.
  const std::vector<std::string> nodes = {"b0", "b1", "b2", "b3"};
  std::vector<std::string> order = nodes;
  std::map<std::string, std::vector<std::string>> reference;
  {
    HashRing ring;
    for (const std::string& node : nodes) ring.add_node(node);
    for (int i = 0; i < 100; ++i) {
      const std::string key = "key-" + std::to_string(i);
      reference[key] = ring.owners(key, 2);
    }
  }
  int permutations = 0;
  std::sort(order.begin(), order.end());
  do {
    HashRing ring;
    for (const std::string& node : order) ring.add_node(node);
    for (const auto& [key, owners] : reference) {
      ASSERT_EQ(ring.owners(key, 2), owners)
          << key << " under permutation " << permutations;
    }
    ++permutations;
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(permutations, 24);
}

TEST(HashRing, RemoveThenReaddRestoresTheExactTable) {
  // A point-erase on remove would permanently drop a collision loser's
  // vnode; the rebuild-on-remove keeps remove/re-add a true inverse.
  HashRing ring;
  for (const char* node : {"a", "b", "c"}) ring.add_node(node);
  std::map<std::string, std::vector<std::string>> before;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key-" + std::to_string(i);
    before[key] = ring.owners(key, 2);
  }
  ring.remove_node("b");
  ring.add_node("b");
  for (const auto& [key, owners] : before) {
    EXPECT_EQ(ring.owners(key, 2), owners) << key;
  }
}

std::vector<std::string> test_keys(int n) {
  std::vector<std::string> keys;
  for (int i = 0; i < n; ++i) keys.push_back("key-" + std::to_string(i));
  return keys;
}

TEST(HashRing, TransferSetIsTheExactRemapDiff) {
  HashRing before;
  for (const char* node : {"a", "b", "c"}) before.add_node(node);
  HashRing after = before;
  after.add_node("d");
  const std::vector<std::string> keys = test_keys(200);

  const std::vector<HashRing::Transfer> transfers =
      HashRing::transfer_set(before, after, keys, 2);
  EXPECT_FALSE(transfers.empty()) << "a 3->4 resize must remap something";
  std::set<std::string> moved;
  for (const HashRing::Transfer& t : transfers) {
    moved.insert(t.key);
    EXPECT_EQ(t.old_owners, before.owners(t.key, 2)) << t.key;
    EXPECT_EQ(t.new_owners, after.owners(t.key, 2)) << t.key;
    EXPECT_NE(t.old_owners, t.new_owners) << t.key;
    // Adding a node only ever *gains* ownership for that node.
    EXPECT_TRUE(t.gained_by("d")) << t.key;
    EXPECT_FALSE(t.gained_by("a") && t.old_owners != t.new_owners &&
                 std::find(t.old_owners.begin(), t.old_owners.end(), "a") !=
                     t.old_owners.end())
        << t.key << ": a node cannot gain a key it already owned";
  }
  // Completeness: every key not in the set owns identically in both rings.
  for (const std::string& key : keys) {
    if (moved.count(key)) continue;
    EXPECT_EQ(before.owners(key, 2), after.owners(key, 2)) << key;
  }
}

TEST(HashRing, TransferSetIsDeterministicAndOrderPreserving) {
  HashRing before;
  for (const char* node : {"a", "b", "c", "d"}) before.add_node(node);
  HashRing after = before;
  after.remove_node("c");
  const std::vector<std::string> keys = test_keys(200);

  const auto first = HashRing::transfer_set(before, after, keys, 2);
  const auto second = HashRing::transfer_set(before, after, keys, 2);
  ASSERT_EQ(first.size(), second.size());
  std::size_t last_index = 0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].key, second[i].key);
    EXPECT_EQ(first[i].old_owners, second[i].old_owners);
    EXPECT_EQ(first[i].new_owners, second[i].new_owners);
    // Input order preserved: keys appear in the order given.
    const auto index = static_cast<std::size_t>(
        std::find(keys.begin(), keys.end(), first[i].key) - keys.begin());
    EXPECT_GE(index, last_index);
    last_index = index;
  }
  // Draining `c` means every transfer lost `c` and gained someone else.
  for (const auto& t : first) {
    EXPECT_TRUE(std::find(t.old_owners.begin(), t.old_owners.end(), "c") !=
                t.old_owners.end())
        << t.key << ": only keys c owned may move on its removal";
    EXPECT_TRUE(std::find(t.new_owners.begin(), t.new_owners.end(), "c") ==
                t.new_owners.end())
        << t.key;
  }
}

TEST(HashRing, TransferSetBetweenIdenticalRingsIsEmpty) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("b");
  EXPECT_TRUE(
      HashRing::transfer_set(ring, ring, test_keys(50), 2).empty());
}

}  // namespace
}  // namespace abp::cluster
