#include "cluster/ring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace abp::cluster {
namespace {

TEST(HashRing, OwnersAreDeterministicAndDistinct) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("b");
  ring.add_node("c");
  const std::vector<std::string> first = ring.owners("deploy", 2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_NE(first[0], first[1]);
  // Pure function of (node set, key): identical on every call and on a
  // freshly built ring.
  EXPECT_EQ(ring.owners("deploy", 2), first);
  HashRing rebuilt;
  rebuilt.add_node("c");
  rebuilt.add_node("a");
  rebuilt.add_node("b");
  EXPECT_EQ(rebuilt.owners("deploy", 2), first);
}

TEST(HashRing, ReplicasClampToNodeCount) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("b");
  const std::vector<std::string> owners = ring.owners("key", 5);
  EXPECT_EQ(owners.size(), 2u);
  EXPECT_TRUE(ring.owners("key", 0).empty());
}

TEST(HashRing, EmptyRingYieldsNoOwners) {
  const HashRing ring;
  EXPECT_TRUE(ring.owners("key", 1).empty());
  EXPECT_EQ(ring.node_count(), 0u);
}

TEST(HashRing, ContainsAndRemove) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("b");
  EXPECT_TRUE(ring.contains("a"));
  ring.remove_node("a");
  EXPECT_FALSE(ring.contains("a"));
  EXPECT_EQ(ring.node_count(), 1u);
  // Every key now lands on the sole survivor.
  EXPECT_EQ(ring.owners("anything", 1), std::vector<std::string>{"b"});
}

TEST(HashRing, RemovalOnlyRemapsKeysOwnedByTheRemovedNode) {
  HashRing ring;
  for (const char* node : {"a", "b", "c", "d"}) ring.add_node(node);
  std::map<std::string, std::string> before;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    before[key] = ring.owners(key, 1)[0];
  }
  ring.remove_node("c");
  for (const auto& [key, owner] : before) {
    if (owner == "c") continue;  // only these may move
    EXPECT_EQ(ring.owners(key, 1)[0], owner) << key;
  }
}

TEST(HashRing, VirtualNodesSpreadLoad) {
  HashRing ring(64);
  ring.add_node("a");
  ring.add_node("b");
  ring.add_node("c");
  std::map<std::string, int> counts;
  for (int i = 0; i < 300; ++i) {
    counts[ring.owners("key-" + std::to_string(i), 1)[0]]++;
  }
  // Each backend owns a nontrivial share; exact split is hash-dependent.
  for (const char* node : {"a", "b", "c"}) {
    EXPECT_GT(counts[node], 30) << node;
  }
}

TEST(HashRing, DuplicateAddIsIdempotent) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("a");
  EXPECT_EQ(ring.node_count(), 1u);
}

}  // namespace
}  // namespace abp::cluster
