/// `ResponseCache`: canonical keying, version fencing, LRU eviction and
/// per-deployment invalidation — the pieces the router composes into its
/// read fast path (DESIGN.md §12).
#include "cluster/response_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace abp::cluster {
namespace {

serve::Request localize(const std::string& field, double x = 12.0) {
  serve::Request request;
  request.seq = 1;
  request.endpoint = serve::Endpoint::kLocalize;
  request.field = field;
  request.points = {{x, 12.0}};
  return request;
}

serve::Response ok_response(const std::string& message) {
  serve::Response response;
  response.status = serve::Status::kOk;
  response.message = message;
  return response;
}

TEST(ResponseCache, KeyIgnoresEveryPerDeliveryRecord) {
  // Two tenants retrying the same logical question at different times must
  // share one entry: seq, principal, deadline, version and request-id /
  // attempt are all delivery envelope, not question.
  serve::Request a = localize("default");
  serve::Request b = localize("default");
  b.seq = 999;
  b.principal = 42;
  b.deadline_ms = 250;
  b.version = 7;
  b.request_id = 1234;
  b.attempt = 3;
  EXPECT_EQ(ResponseCache::key_for(a), ResponseCache::key_for(b));

  // The question itself still distinguishes keys.
  EXPECT_NE(ResponseCache::key_for(localize("default", 12.0)),
            ResponseCache::key_for(localize("default", 13.0)));
  EXPECT_NE(ResponseCache::key_for(localize("alpha")),
            ResponseCache::key_for(localize("beta")));
}

TEST(ResponseCache, HitRequiresTheExactVersion) {
  ResponseCache cache(8);
  const std::string key = ResponseCache::key_for(localize("default"));
  cache.insert("default", 3, key, ok_response("v3"));
  ASSERT_EQ(cache.size(), 1u);

  const auto hit = cache.lookup("default", 3, key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->message, "v3");

  // A lookup fenced at any other version is a miss AND drops the stale
  // entry — it can never be served again.
  EXPECT_FALSE(cache.lookup("default", 4, key).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup("default", 3, key).has_value());
}

TEST(ResponseCache, InsertReplacesAnExistingKey) {
  ResponseCache cache(8);
  const std::string key = ResponseCache::key_for(localize("default"));
  cache.insert("default", 1, key, ok_response("old"));
  cache.insert("default", 2, key, ok_response("new"));
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.lookup("default", 2, key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->message, "new");
}

TEST(ResponseCache, EvictsLeastRecentlyUsedAtCapacity) {
  ResponseCache cache(2);
  const std::string k1 = ResponseCache::key_for(localize("default", 1.0));
  const std::string k2 = ResponseCache::key_for(localize("default", 2.0));
  const std::string k3 = ResponseCache::key_for(localize("default", 3.0));
  cache.insert("default", 1, k1, ok_response("one"));
  cache.insert("default", 1, k2, ok_response("two"));
  // Touch k1 so k2 becomes the LRU entry, then overflow.
  ASSERT_TRUE(cache.lookup("default", 1, k1).has_value());
  cache.insert("default", 1, k3, ok_response("three"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup("default", 1, k1).has_value());
  EXPECT_FALSE(cache.lookup("default", 1, k2).has_value());
  EXPECT_TRUE(cache.lookup("default", 1, k3).has_value());
}

TEST(ResponseCache, InvalidateDropsOnlyThatDeployment) {
  ResponseCache cache(8);
  const std::string ka = ResponseCache::key_for(localize("alpha", 1.0));
  const std::string kb = ResponseCache::key_for(localize("alpha", 2.0));
  const std::string kc = ResponseCache::key_for(localize("beta"));
  cache.insert("alpha", 1, ka, ok_response("a"));
  cache.insert("alpha", 1, kb, ok_response("b"));
  cache.insert("beta", 1, kc, ok_response("c"));

  EXPECT_EQ(cache.invalidate("alpha"), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.lookup("alpha", 1, ka).has_value());
  EXPECT_FALSE(cache.lookup("alpha", 1, kb).has_value());
  EXPECT_TRUE(cache.lookup("beta", 1, kc).has_value());
  // Idempotent on an already-empty deployment.
  EXPECT_EQ(cache.invalidate("alpha"), 0u);
}

TEST(ResponseCache, MissOnUnknownKeyOrDeployment) {
  ResponseCache cache(4);
  const std::string key = ResponseCache::key_for(localize("default"));
  EXPECT_FALSE(cache.lookup("default", 1, key).has_value());
  cache.insert("default", 1, key, ok_response("x"));
  EXPECT_FALSE(cache.lookup("other", 1, key).has_value());
}

}  // namespace
}  // namespace abp::cluster
