/// \file cluster_chaos_test.cc
/// \brief Fault-injection suite for the cluster router (label: chaos).
///
/// Three real backends (service + manual server) sit behind
/// `FaultTransport` connections, so every fault the single-server chaos
/// suite can inject — crashed connections, lost responses, corrupt frames,
/// stalls expiring deadlines — now happens *between the router and its
/// backends*. The invariants under test:
///
///  * every routed request is answered exactly once (no lost, no
///    duplicated replies), whatever the wire does;
///  * each backend's admission identity holds after drain:
///    submitted == completed + shed;
///  * a backend crash mid-pipelined-batch fails over idempotent requests
///    to a surviving replica and the client sees clean `ok` responses;
///  * a stale backend is repaired in-band (install-then-retry) without the
///    client ever seeing `version-mismatch`.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "cluster/backend_pool.h"
#include "cluster/replicator.h"
#include "cluster/ring.h"
#include "cluster/router.h"
#include "io/field_io.h"
#include "serve/fault_transport.h"
#include "cluster_harness.h"

namespace abp::cluster {
namespace {

std::string field_text() {
  std::ostringstream out;
  write_field(out, harness_field());
  return out.str();
}

serve::Request localize_request(std::uint64_t seq) {
  serve::Request request;
  request.seq = seq;
  request.endpoint = serve::Endpoint::kLocalize;
  request.field = "default";
  request.points = {{12, 12}, {50, 50}};
  return request;
}

/// A cluster whose backend connections are `FaultTransport`s. `scripts`
/// decides the fault script per (backend, connect attempt) — reconnects
/// after a transport failure get a fresh script.
struct FaultCluster {
  using ScriptFn = std::function<serve::FaultTransport::Options(
      const std::string& backend, int connect_index)>;

  FaultCluster(std::vector<std::string> names, std::size_t replication,
               ScriptFn scripts, serve::ManualClock* clock = nullptr,
               BackendPoolOptions pool_options = {})
      : backend_names(names) {
    for (const std::string& name : names) {
      ring.add_node(name);
      auto& backend = backends[name];
      backend.service = std::make_unique<serve::LocalizationService>(
          harness_service_config());
      serve::Server::Options server_options;
      if (clock) server_options.clock_ms = clock->fn();
      backend.server = std::make_unique<serve::Server>(*backend.service,
                                                       server_options);
    }
    pool = std::make_unique<BackendPool>(
        names, std::move(pool_options), metrics,
        [this, scripts](const std::string& name) {
          Backend& backend = backends.at(name);
          const int index = backend.connects++;
          return std::make_unique<serve::FaultTransport>(
              *backend.server, scripts(name, index));
        });
    replicator = std::make_unique<Replicator>(*pool, ring, replication,
                                              metrics);
    pool->set_recovery_callback([this](const std::string& backend) {
      replicator->sync_backend(backend);
    });
    router = std::make_unique<Router>(ring, *pool, *replicator, metrics);
    pool->start();
    replicator->set_deployment("default", field_text());
  }

  ~FaultCluster() { pool->stop(); }

  std::string call(const serve::Request& request) {
    auto done = std::make_shared<std::promise<std::string>>();
    auto future = done->get_future();
    router->submit(serve::format_request(request),
                   [done](std::string payload) {
                     done->set_value(std::move(payload));
                   });
    return future.get();
  }

  struct Backend {
    std::unique_ptr<serve::LocalizationService> service;
    std::unique_ptr<serve::Server> server;
    int connects = 0;
  };

  std::vector<std::string> backend_names;
  HashRing ring;
  serve::RouterMetrics metrics;
  std::map<std::string, Backend> backends;
  std::unique_ptr<BackendPool> pool;
  std::unique_ptr<Replicator> replicator;
  std::unique_ptr<Router> router;
};

serve::FaultTransport::Options clean_script() { return {}; }

/// The backend the ring picks first for "default" — the one a fault script
/// must target to be guaranteed to fire.
std::string primary_owner(const std::vector<std::string>& names) {
  HashRing probe;
  for (const std::string& name : names) probe.add_node(name);
  return probe.owners("default", 1)[0];
}

/// Per-backend admission identity: submitted == completed + shed.
void expect_backends_reconcile(FaultCluster& cluster) {
  for (const auto& [name, backend] : cluster.backends) {
    const serve::ServiceMetrics& m = backend.service->metrics();
    EXPECT_EQ(m.submitted(), m.completed() + m.shed_total())
        << "backend " << name << " lost a request";
  }
}

TEST(ClusterChaos, BackendCrashMidBatchLosesNothing) {
  // The primary owner's first connection dies with kResetAfterSend on its
  // 4th exchange: the backend *executes* that request but the response is
  // lost, and every later request in the pipelined batch is aborted. All
  // requests are idempotent, so the router must fail them over and the
  // client must see only clean `ok` responses, exactly one per request.
  const std::string primary = primary_owner({"b1", "b2", "b3"});
  FaultCluster cluster(
      {"b1", "b2", "b3"}, /*replication=*/2,
      [primary](const std::string& backend, int connect_index) {
        serve::FaultTransport::Options options;
        if (backend == primary && connect_index == 0) {
          options.script = serve::FaultScript(
              {{serve::FaultKind::kNone},
               {serve::FaultKind::kNone},
               {serve::FaultKind::kNone},
               {serve::FaultKind::kResetAfterSend}},
              /*cycle=*/false);
        }
        return options;
      });
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  constexpr std::uint64_t kRequests = 12;
  std::map<std::uint64_t, int> replies;
  std::map<std::uint64_t, serve::Status> statuses;
  for (std::uint64_t seq = 1; seq <= kRequests; ++seq) {
    const auto response =
        serve::parse_response(cluster.call(localize_request(seq)));
    ASSERT_TRUE(response.has_value());
    replies[response->seq]++;
    statuses[response->seq] = response->status;
  }
  for (std::uint64_t seq = 1; seq <= kRequests; ++seq) {
    EXPECT_EQ(replies[seq], 1) << "seq " << seq;
    EXPECT_EQ(statuses[seq], serve::Status::kOk) << "seq " << seq;
  }
  expect_backends_reconcile(cluster);
}

TEST(ClusterChaos, PipelinedBurstThroughCrashReconciles) {
  // Same crash, but the requests are submitted concurrently so they ride
  // one pipelined batch into the crashing connection.
  FaultCluster cluster(
      {"b1", "b2", "b3"}, /*replication=*/2,
      [](const std::string& backend, int connect_index) {
        serve::FaultTransport::Options options;
        if (backend != "b2" && connect_index == 0) {
          options.script = serve::FaultScript(
              {{serve::FaultKind::kNone},
               {serve::FaultKind::kNone},
               {serve::FaultKind::kResetAfterSend}},
              /*cycle=*/false);
        }
        return options;
      });
  cluster.replicator->sync_all();

  constexpr std::uint64_t kRequests = 16;
  std::mutex mu;
  std::map<std::uint64_t, int> replies;
  std::map<std::uint64_t, serve::Status> statuses;
  auto all_done = std::make_shared<std::promise<void>>();
  std::size_t outstanding = kRequests;
  for (std::uint64_t seq = 1; seq <= kRequests; ++seq) {
    cluster.router->submit(
        serve::format_request(localize_request(seq)),
        [&, all_done](std::string payload) {
          const auto response = serve::parse_response(payload);
          std::lock_guard<std::mutex> lock(mu);
          if (response) {
            replies[response->seq]++;
            statuses[response->seq] = response->status;
          }
          if (--outstanding == 0) all_done->set_value();
        });
  }
  all_done->get_future().get();

  for (std::uint64_t seq = 1; seq <= kRequests; ++seq) {
    EXPECT_EQ(replies[seq], 1) << "seq " << seq;
    // Every reply is terminal-clean: either served, or an honest retryable
    // shed — never silence, never a duplicate.
    EXPECT_TRUE(statuses[seq] == serve::Status::kOk ||
                serve::status_retryable(statuses[seq]))
        << "seq " << seq << ": "
        << serve::status_name(statuses[seq]);
  }
  expect_backends_reconcile(cluster);
}

TEST(ClusterChaos, SlowBackendExpiresDeadlinesNotTheCluster) {
  // One backend stalls 100 virtual ms before executing; the request's
  // deadline is 40 ms. The backend itself sheds deadline-exceeded and the
  // router passes that through untouched — a slow replica must not turn
  // into a hung client or a silent retry storm.
  serve::ManualClock clock;
  FaultCluster cluster(
      {"b1"}, /*replication=*/1,
      [&clock](const std::string&, int) {
        serve::FaultTransport::Options options;
        options.script = serve::FaultScript(
            {{serve::FaultKind::kNone},  // the snapshot install
             {serve::FaultKind::kStallBeforeExecute, 100.0}},
            /*cycle=*/false);
        options.clock = &clock;  // virtual stall — no real sleeping
        return options;
      },
      &clock);
  cluster.replicator->sync_all();

  serve::Request request = localize_request(1);
  request.deadline_ms = 40;
  const auto response = serve::parse_response(cluster.call(request));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kDeadlineExceeded);
  EXPECT_TRUE(serve::status_retryable(response->status));
  expect_backends_reconcile(cluster);
}

TEST(ClusterChaos, CorruptResponseFrameFailsOver) {
  // The primary's response frame arrives with one flipped bit. The pool
  // cannot decode it, fails the forward, and the router retries the
  // request on the healthy replica.
  const std::string primary = primary_owner({"b1", "b2"});
  FaultCluster cluster(
      {"b1", "b2"}, /*replication=*/2,
      [primary](const std::string& backend, int connect_index) {
        serve::FaultTransport::Options options;
        if (backend == primary && connect_index == 0) {
          options.script = serve::FaultScript(
              {{serve::FaultKind::kNone},  // install
               {serve::FaultKind::kCorruptResponse}},
              /*cycle=*/false);
        }
        return options;
      });
  cluster.replicator->sync_all();

  const auto response =
      serve::parse_response(cluster.call(localize_request(1)));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kOk);
  expect_backends_reconcile(cluster);
}

TEST(ClusterChaos, StaleSnapshotRepairedInBand) {
  // The backend holds version 1 while the registry moves to version 2. The
  // first forwarded query answers version-mismatch; the router must ship
  // the fresh snapshot and retry on the same FIFO so the client sees a
  // clean `ok` — never the mismatch.
  FaultCluster cluster({"b1", "b2"}, /*replication=*/2,
                       [](const std::string&, int) { return clean_script(); });
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);
  cluster.replicator->set_deployment("default", field_text());

  const auto response =
      serve::parse_response(cluster.call(localize_request(1)));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kOk);

  std::uint64_t mismatches = 0;
  for (const std::string& name : cluster.backend_names) {
    mismatches += cluster.metrics.backend_snapshot(name).version_mismatches;
  }
  EXPECT_EQ(mismatches, 1u);
  expect_backends_reconcile(cluster);
}

}  // namespace
}  // namespace abp::cluster
