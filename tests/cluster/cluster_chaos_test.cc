/// \file cluster_chaos_test.cc
/// \brief Fault-injection suite for the cluster router (label: chaos).
///
/// Three real backends (service + manual server) sit behind
/// `FaultTransport` connections, so every fault the single-server chaos
/// suite can inject — crashed connections, lost responses, corrupt frames,
/// stalls expiring deadlines — now happens *between the router and its
/// backends*. The invariants under test:
///
///  * every routed request is answered exactly once (no lost, no
///    duplicated replies), whatever the wire does;
///  * each backend's admission identity holds after drain:
///    submitted == completed + shed;
///  * a backend crash mid-pipelined-batch fails over idempotent requests
///    to a surviving replica and the client sees clean `ok` responses;
///  * a stale backend is repaired in-band (install-then-retry) without the
///    client ever seeing `version-mismatch`.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/membership.h"
#include "cluster/replicator.h"
#include "cluster/ring.h"
#include "cluster/router.h"
#include "io/field_io.h"
#include "serve/client.h"
#include "serve/fault_transport.h"
#include "serve/protocol.h"
#include "cluster_harness.h"

namespace abp::cluster {
namespace {

std::string field_text() {
  std::ostringstream out;
  write_field(out, harness_field());
  return out.str();
}

serve::Request localize_request(std::uint64_t seq) {
  serve::Request request;
  request.seq = seq;
  request.endpoint = serve::Endpoint::kLocalize;
  request.field = "default";
  request.points = {{12, 12}, {50, 50}};
  return request;
}

/// A cluster whose backend connections are `FaultTransport`s. `scripts`
/// decides the fault script per (backend, connect attempt) — reconnects
/// after a transport failure get a fresh script.
struct FaultCluster {
  using ScriptFn = std::function<serve::FaultTransport::Options(
      const std::string& backend, int connect_index)>;

  FaultCluster(std::vector<std::string> names, std::size_t replication,
               ScriptFn scripts, serve::ManualClock* clock = nullptr,
               BackendPoolOptions pool_options = {},
               std::size_t log_retain = MutationLog::kDefaultRetain)
      : backend_names(names), membership(names) {
    for (const std::string& name : names) {
      auto& backend = backends[name];
      backend.service = std::make_unique<serve::LocalizationService>(
          harness_service_config());
      serve::Server::Options server_options;
      if (clock) server_options.clock_ms = clock->fn();
      backend.server = std::make_unique<serve::Server>(*backend.service,
                                                       server_options);
    }
    pool = std::make_unique<BackendPool>(
        names, std::move(pool_options), metrics,
        [this, scripts](const std::string& name) {
          Backend& backend = backends.at(name);
          const int index = backend.connects++;
          return std::make_unique<serve::FaultTransport>(
              *backend.server, scripts(name, index));
        });
    replicator = std::make_unique<Replicator>(*pool, membership, replication,
                                              metrics, log_retain);
    pool->set_recovery_callback([this](const std::string& backend) {
      replicator->sync_backend(backend);
    });
    router = std::make_unique<Router>(membership, *pool, *replicator, metrics);
    pool->start();
    replicator->set_deployment("default", field_text());
  }

  ~FaultCluster() { pool->stop(); }

  std::string call(const serve::Request& request) {
    auto done = std::make_shared<std::promise<std::string>>();
    auto future = done->get_future();
    router->submit(serve::format_request(request),
                   [done](std::string payload) {
                     done->set_value(std::move(payload));
                   });
    return future.get();
  }

  struct Backend {
    std::unique_ptr<serve::LocalizationService> service;
    std::unique_ptr<serve::Server> server;
    int connects = 0;
  };

  std::vector<std::string> backend_names;
  MembershipTable membership;
  serve::RouterMetrics metrics;
  std::map<std::string, Backend> backends;
  std::unique_ptr<BackendPool> pool;
  std::unique_ptr<Replicator> replicator;
  std::unique_ptr<Router> router;
};

serve::FaultTransport::Options clean_script() { return {}; }

/// The backend the ring picks first for "default" — the one a fault script
/// must target to be guaranteed to fire.
std::string primary_owner(const std::vector<std::string>& names) {
  HashRing probe;
  for (const std::string& name : names) probe.add_node(name);
  return probe.owners("default", 1)[0];
}

/// Per-backend admission identity: submitted == completed + shed.
void expect_backends_reconcile(FaultCluster& cluster) {
  for (const auto& [name, backend] : cluster.backends) {
    const serve::ServiceMetrics& m = backend.service->metrics();
    EXPECT_EQ(m.submitted(), m.completed() + m.shed_total())
        << "backend " << name << " lost a request";
  }
}

TEST(ClusterChaos, BackendCrashMidBatchLosesNothing) {
  // The primary owner's first connection dies with kResetAfterSend on its
  // 4th exchange: the backend *executes* that request but the response is
  // lost, and every later request in the pipelined batch is aborted. All
  // requests are idempotent, so the router must fail them over and the
  // client must see only clean `ok` responses, exactly one per request.
  const std::string primary = primary_owner({"b1", "b2", "b3"});
  FaultCluster cluster(
      {"b1", "b2", "b3"}, /*replication=*/2,
      [primary](const std::string& backend, int connect_index) {
        serve::FaultTransport::Options options;
        if (backend == primary && connect_index == 0) {
          options.script = serve::FaultScript(
              {{serve::FaultKind::kNone},
               {serve::FaultKind::kNone},
               {serve::FaultKind::kNone},
               {serve::FaultKind::kResetAfterSend}},
              /*cycle=*/false);
        }
        return options;
      });
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  constexpr std::uint64_t kRequests = 12;
  std::map<std::uint64_t, int> replies;
  std::map<std::uint64_t, serve::Status> statuses;
  for (std::uint64_t seq = 1; seq <= kRequests; ++seq) {
    const auto response =
        serve::parse_response(cluster.call(localize_request(seq)));
    ASSERT_TRUE(response.has_value());
    replies[response->seq]++;
    statuses[response->seq] = response->status;
  }
  for (std::uint64_t seq = 1; seq <= kRequests; ++seq) {
    EXPECT_EQ(replies[seq], 1) << "seq " << seq;
    EXPECT_EQ(statuses[seq], serve::Status::kOk) << "seq " << seq;
  }
  expect_backends_reconcile(cluster);
}

TEST(ClusterChaos, PipelinedBurstThroughCrashReconciles) {
  // Same crash, but the requests are submitted concurrently so they ride
  // one pipelined batch into the crashing connection.
  FaultCluster cluster(
      {"b1", "b2", "b3"}, /*replication=*/2,
      [](const std::string& backend, int connect_index) {
        serve::FaultTransport::Options options;
        if (backend != "b2" && connect_index == 0) {
          options.script = serve::FaultScript(
              {{serve::FaultKind::kNone},
               {serve::FaultKind::kNone},
               {serve::FaultKind::kResetAfterSend}},
              /*cycle=*/false);
        }
        return options;
      });
  cluster.replicator->sync_all();

  constexpr std::uint64_t kRequests = 16;
  std::mutex mu;
  std::map<std::uint64_t, int> replies;
  std::map<std::uint64_t, serve::Status> statuses;
  auto all_done = std::make_shared<std::promise<void>>();
  std::size_t outstanding = kRequests;
  for (std::uint64_t seq = 1; seq <= kRequests; ++seq) {
    cluster.router->submit(
        serve::format_request(localize_request(seq)),
        [&, all_done](std::string payload) {
          const auto response = serve::parse_response(payload);
          std::lock_guard<std::mutex> lock(mu);
          if (response) {
            replies[response->seq]++;
            statuses[response->seq] = response->status;
          }
          if (--outstanding == 0) all_done->set_value();
        });
  }
  all_done->get_future().get();

  for (std::uint64_t seq = 1; seq <= kRequests; ++seq) {
    EXPECT_EQ(replies[seq], 1) << "seq " << seq;
    // Every reply is terminal-clean: either served, or an honest retryable
    // shed — never silence, never a duplicate.
    EXPECT_TRUE(statuses[seq] == serve::Status::kOk ||
                serve::status_retryable(statuses[seq]))
        << "seq " << seq << ": "
        << serve::status_name(statuses[seq]);
  }
  expect_backends_reconcile(cluster);
}

TEST(ClusterChaos, SlowBackendExpiresDeadlinesNotTheCluster) {
  // One backend stalls 100 virtual ms before executing; the request's
  // deadline is 40 ms. The backend itself sheds deadline-exceeded and the
  // router passes that through untouched — a slow replica must not turn
  // into a hung client or a silent retry storm.
  serve::ManualClock clock;
  FaultCluster cluster(
      {"b1"}, /*replication=*/1,
      [&clock](const std::string&, int) {
        serve::FaultTransport::Options options;
        options.script = serve::FaultScript(
            {{serve::FaultKind::kNone},  // the snapshot install
             {serve::FaultKind::kStallBeforeExecute, 100.0}},
            /*cycle=*/false);
        options.clock = &clock;  // virtual stall — no real sleeping
        return options;
      },
      &clock);
  cluster.replicator->sync_all();

  serve::Request request = localize_request(1);
  request.deadline_ms = 40;
  const auto response = serve::parse_response(cluster.call(request));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kDeadlineExceeded);
  EXPECT_TRUE(serve::status_retryable(response->status));
  expect_backends_reconcile(cluster);
}

TEST(ClusterChaos, CorruptResponseFrameFailsOver) {
  // The primary's response frame arrives with one flipped bit. The pool
  // cannot decode it, fails the forward, and the router retries the
  // request on the healthy replica.
  const std::string primary = primary_owner({"b1", "b2"});
  FaultCluster cluster(
      {"b1", "b2"}, /*replication=*/2,
      [primary](const std::string& backend, int connect_index) {
        serve::FaultTransport::Options options;
        if (backend == primary && connect_index == 0) {
          options.script = serve::FaultScript(
              {{serve::FaultKind::kNone},  // install
               {serve::FaultKind::kCorruptResponse}},
              /*cycle=*/false);
        }
        return options;
      });
  cluster.replicator->sync_all();

  const auto response =
      serve::parse_response(cluster.call(localize_request(1)));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kOk);
  expect_backends_reconcile(cluster);
}

serve::Request add_beacon_request(std::uint64_t seq, Vec2 point) {
  serve::Request request;
  request.seq = seq;
  request.endpoint = serve::Endpoint::kAddBeacon;
  request.field = "default";
  request.points = {point};
  return request;
}

serve::Request snapshot_fetch(std::uint64_t seq = 99) {
  serve::Request fetch;
  fetch.seq = seq;
  fetch.endpoint = serve::Endpoint::kSnapshot;
  fetch.field = "default";
  return fetch;
}

/// Block until every forward queued on `backend` has resolved: a sentinel
/// rides the FIFO behind them. Needed before healing a partition — a burst
/// mutation still queued at heal time would land on the clean reconnect,
/// answer `version-mismatch`, and be repaired via install, masking the
/// replay path under test.
void drain_backend_fifo(FaultCluster& cluster, const std::string& backend) {
  auto drained = std::make_shared<std::promise<void>>();
  BackendPool::Forward sentinel;
  sentinel.request.endpoint = serve::Endpoint::kStats;
  sentinel.on_reply = [drained](std::string) { drained->set_value(); };
  sentinel.on_failure = [drained] { drained->set_value(); };
  if (cluster.pool->enqueue(backend, std::move(sentinel))) {
    drained->get_future().get();
  }
  // enqueue() refusing means the breaker is open — the queue was already
  // failed fast when it tripped.
}

TEST(ClusterChaos, OwnerKilledMidWriteBurstKeepsQuorumThenReplays) {
  // All three backends own the deployment (majority quorum 2-of-3). The
  // ring's first owner dies partway through a burst of add-beacon writes —
  // its connection resets *before* the mutation executes — and stays
  // partitioned until after the burst. Every write must still ack (two
  // owners form the quorum), and on recovery the victim must catch up by
  // *replaying the log suffix*, not a full snapshot resync, ending
  // byte-identical to its peers.
  const std::string victim = primary_owner({"b1", "b2", "b3"});
  serve::ManualClock clock;
  std::atomic<bool> partitioned{true};
  BackendPoolOptions pool_options;
  pool_options.clock_ms = clock.fn();
  FaultCluster cluster(
      {"b1", "b2", "b3"}, /*replication=*/3,
      [victim, &partitioned](const std::string& backend, int connect_index) {
        serve::FaultTransport::Options options;
        if (backend != victim || !partitioned.load()) return options;
        if (connect_index == 0) {
          // Survive the install and the first write, then drop mid-burst.
          options.script = serve::FaultScript(
              {{serve::FaultKind::kNone},
               {serve::FaultKind::kNone},
               {serve::FaultKind::kResetBeforeSend}},
              /*cycle=*/false);
        } else {
          options.script = serve::FaultScript(
              {{serve::FaultKind::kResetBeforeSend}}, /*cycle=*/true);
        }
        return options;
      },
      /*clock=*/nullptr, std::move(pool_options));
  ASSERT_EQ(cluster.replicator->sync_all(), 3u);

  constexpr std::uint64_t kWrites = 5;
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    const auto response = serve::parse_response(
        cluster.call(add_beacon_request(i + 1, {double(i + 1), 2})));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, serve::Status::kOk) << "write " << i + 1;
  }
  EXPECT_EQ(cluster.metrics.write_acks(), kWrites);
  EXPECT_EQ(cluster.replicator->read_version("default"), 1 + kWrites);

  // Heal the partition. Drive the heartbeat until the breaker sits closed
  // (pipelined batches coalesce failures, so the burst may or may not have
  // tripped it), then run the resync the recovery callback would run.
  drain_backend_fifo(cluster, victim);
  partitioned = false;
  ASSERT_TRUE(wait_until([&] {
    clock.advance(2000);
    cluster.pool->tick();
    return cluster.pool->health(victim) == BackendHealth::kClosed;
  }));
  cluster.replicator->sync_backend(victim);
  ASSERT_TRUE(wait_until([&] {
    return cluster.backends.at(victim).service->field_version("default") ==
           1 + kWrites;
  })) << "victim stuck at v"
      << cluster.backends.at(victim).service->field_version("default")
      << " installs " << cluster.metrics.backend_snapshot(victim).installs
      << " replays " << cluster.metrics.backend_snapshot(victim).replays;
  EXPECT_EQ(cluster.metrics.backend_snapshot(victim).installs, 1u)
      << "recovery must replay, not resync";
  EXPECT_GE(cluster.metrics.backend_snapshot(victim).replays, kWrites - 1);

  // Every owner's snapshot endpoint answers byte-identically, and a routed
  // read reflects every acked write.
  const std::string authority =
      cluster.replicator->log().snapshot("default").text;
  for (const std::string& name : cluster.backend_names) {
    EXPECT_EQ(cluster.backends.at(name).service->handle(snapshot_fetch()).text,
              authority)
        << name;
  }
  const auto routed = serve::parse_response(cluster.call(snapshot_fetch()));
  ASSERT_TRUE(routed.has_value());
  EXPECT_EQ(routed->status, serve::Status::kOk);
  EXPECT_EQ(routed->text, authority);
  expect_backends_reconcile(cluster);
}

TEST(ClusterChaos, PartitionBeyondRetainedWindowFallsBackToResync) {
  // Same partition, but the log retains only the last two entries: by the
  // time the victim heals it is too far behind to replay, so recovery must
  // fall back to a full snapshot install — and still converge to
  // byte-identical state.
  const std::string victim = primary_owner({"b1", "b2", "b3"});
  serve::ManualClock clock;
  std::atomic<bool> partitioned{true};
  BackendPoolOptions pool_options;
  pool_options.clock_ms = clock.fn();
  FaultCluster cluster(
      {"b1", "b2", "b3"}, /*replication=*/3,
      [victim, &partitioned](const std::string& backend, int connect_index) {
        serve::FaultTransport::Options options;
        if (backend != victim || !partitioned.load()) return options;
        if (connect_index == 0) {
          options.script = serve::FaultScript(
              {{serve::FaultKind::kNone},
               {serve::FaultKind::kResetBeforeSend}},
              /*cycle=*/false);
        } else {
          options.script = serve::FaultScript(
              {{serve::FaultKind::kResetBeforeSend}}, /*cycle=*/true);
        }
        return options;
      },
      /*clock=*/nullptr, std::move(pool_options), /*log_retain=*/2);
  ASSERT_EQ(cluster.replicator->sync_all(), 3u);

  constexpr std::uint64_t kWrites = 5;
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    const auto response = serve::parse_response(
        cluster.call(add_beacon_request(i + 1, {double(i + 1), 3})));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, serve::Status::kOk) << "write " << i + 1;
  }
  ASSERT_FALSE(cluster.replicator->log().suffix("default", 1).has_value())
      << "the victim's position must be outside the retained window";

  drain_backend_fifo(cluster, victim);
  partitioned = false;
  ASSERT_TRUE(wait_until([&] {
    clock.advance(2000);
    cluster.pool->tick();
    return cluster.pool->health(victim) == BackendHealth::kClosed;
  }));
  cluster.replicator->sync_backend(victim);
  ASSERT_TRUE(wait_until([&] {
    return cluster.backends.at(victim).service->field_version("default") ==
           1 + kWrites;
  }));
  EXPECT_GE(cluster.metrics.backend_snapshot(victim).installs, 2u)
      << "beyond the window recovery is a full resync";
  EXPECT_EQ(cluster.metrics.backend_snapshot(victim).replays, 0u);

  const std::string authority =
      cluster.replicator->log().snapshot("default").text;
  for (const std::string& name : cluster.backend_names) {
    EXPECT_EQ(cluster.backends.at(name).service->handle(snapshot_fetch()).text,
              authority)
        << name;
  }
  expect_backends_reconcile(cluster);
}

/// `RetryingClient` transport that speaks to the router's frame sink —
/// the client-side of `abp query --connect` pointed at `abp route`,
/// without sockets. Keeps the last reply payload for byte-level asserts.
class RouterTransport final : public serve::ClientTransport {
 public:
  explicit RouterTransport(Router& router) : router_(&router) {}

  serve::Response roundtrip(const serve::Request& request) override {
    auto done = std::make_shared<std::promise<std::string>>();
    auto future = done->get_future();
    router_->submit(serve::format_request(request),
                    [done](std::string payload) {
                      done->set_value(std::move(payload));
                    });
    last_payload = future.get();
    const std::optional<serve::Response> response =
        serve::parse_response(last_payload);
    if (!response) throw serve::ServeError("unparseable router reply");
    return *response;
  }
  void send_async(const serve::Request& request,
                  std::function<void(std::string)> on_reply_frame) override {
    router_->submit(serve::format_request(request),
                    [on_reply_frame](std::string payload) {
                      on_reply_frame(serve::encode_frame(std::move(payload)));
                    });
  }
  std::string name() const override { return "router"; }

  std::string last_payload;

 private:
  Router* router_;
};

/// Reference bytes: the same request sequence against a standalone direct
/// server; returns the last reply payload.
std::string direct_payload(const std::vector<serve::Request>& requests) {
  serve::LocalizationService service(harness_service_config());
  service.add_field("default", harness_field());
  serve::Server server(service);
  std::string out;
  for (const serve::Request& request : requests) {
    server.submit(serve::format_request(request),
                  [&out](std::string payload) { out = std::move(payload); });
    server.pump();
  }
  return out;
}

TEST(ClusterChaos, PostAppendQuorumLossThenSameIdRetryAppliesOnce) {
  // The exactly-once acceptance drill. Majority quorum is 2-of-3; two
  // owners die *after* the write is appended but before their mutations
  // execute, so the client is answered retryable `unavailable` with the
  // write stranded in the log at an unacked version. The partition heals
  // during the client's backoff, and the retry — same request id — must
  // *finish* the stranded write: exactly one beacon lands, the client
  // collects the original ack bytes, and every replica converges
  // byte-identically.
  const std::string survivor = primary_owner({"b1", "b2", "b3"});
  serve::ManualClock clock;
  std::atomic<bool> partitioned{true};
  BackendPoolOptions pool_options;
  pool_options.clock_ms = clock.fn();  // heartbeats only when advanced
  FaultCluster cluster(
      {"b1", "b2", "b3"}, /*replication=*/3,
      [survivor, &partitioned](const std::string& backend, int connect_index) {
        serve::FaultTransport::Options options;
        if (backend == survivor || !partitioned.load()) return options;
        if (connect_index == 0) {
          // Survive the install, then die on the fanned-out mutation.
          options.script = serve::FaultScript(
              {{serve::FaultKind::kNone},
               {serve::FaultKind::kResetBeforeSend}},
              /*cycle=*/false);
        } else {
          options.script = serve::FaultScript(
              {{serve::FaultKind::kResetBeforeSend}}, /*cycle=*/true);
        }
        return options;
      },
      /*clock=*/nullptr, std::move(pool_options));
  ASSERT_EQ(cluster.replicator->sync_all(), 3u);

  RouterTransport transport(*cluster.router);
  serve::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_ms = 5.0;
  serve::RetryingClient client(
      [&transport] { return serve::borrow_transport(transport); }, policy);
  // The backoff between attempts is where the partition heals.
  client.set_sleeper([&partitioned](double) { partitioned = false; });
  client.set_request_id_source([] { return 0xE0E0ull; });

  serve::Request add = add_beacon_request(7, {20, 20});
  const serve::CallResult result = client.call(add);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.response.status, serve::Status::kOk);
  EXPECT_EQ(result.attempts, 2u)
      << "attempt 1 lost quorum, attempt 2 completed the stranded write";

  // Exactly one beacon: one append, one acked version, and the ack the
  // client kept is byte-identical to a direct single server's.
  EXPECT_EQ(cluster.replicator->version("default"), 2u);
  EXPECT_EQ(cluster.replicator->read_version("default"), 2u);
  EXPECT_EQ(cluster.metrics.writes(), 1u);
  EXPECT_EQ(cluster.metrics.write_quorum_failures(), 1u);
  EXPECT_EQ(cluster.metrics.write_dedup_hits(), 1u);
  EXPECT_EQ(cluster.metrics.write_acks(), 1u);
  serve::Request reference = add;
  reference.request_id = 0xE0E0ull;
  reference.attempt = 1;  // what the successful retry carried
  EXPECT_EQ(transport.last_payload, direct_payload({reference}));

  // Every owner converges to a byte-identical snapshot (the slowest ack
  // may still be in flight when the quorum reply fires).
  ASSERT_TRUE(wait_until([&] {
    for (const std::string& name : cluster.backend_names) {
      if (cluster.backends.at(name).service->field_version("default") != 2u) {
        return false;
      }
    }
    return true;
  }));
  const std::string authority =
      cluster.replicator->log().snapshot("default").text;
  for (const std::string& name : cluster.backend_names) {
    EXPECT_EQ(cluster.backends.at(name).service->handle(snapshot_fetch()).text,
              authority)
        << name;
  }
  expect_backends_reconcile(cluster);
}

TEST(ClusterChaos, DuplicateDeliveredRoutedWriteIsSuppressed) {
  // The network duplicates the client's write frame in front of the
  // router: both deliveries are answered with the same bytes and only one
  // beacon is appended.
  FaultCluster cluster({"b1"}, /*replication=*/1,
                       [](const std::string&, int) { return clean_script(); });
  ASSERT_EQ(cluster.replicator->sync_all(), 1u);

  std::vector<std::string> payloads;
  auto exchange = [&cluster, &payloads](std::string frame) {
    serve::FrameDecoder decoder;
    decoder.feed(frame);
    std::optional<std::string> payload = decoder.next();
    EXPECT_TRUE(payload.has_value());
    auto done = std::make_shared<std::promise<std::string>>();
    cluster.router->submit(std::move(*payload), [done](std::string reply) {
      done->set_value(std::move(reply));
    });
    std::string reply = done->get_future().get();
    payloads.push_back(reply);
    return serve::encode_frame(std::move(reply));
  };
  serve::FaultTransport::Options fault_options;
  fault_options.script =
      serve::FaultScript({{serve::FaultKind::kDuplicateRequest}});
  serve::FaultTransport transport(exchange, fault_options);

  serve::Request add = add_beacon_request(1, {20, 20});
  add.request_id = 0xFEEDull;
  const serve::Response response = transport.roundtrip(add);
  ASSERT_EQ(response.status, serve::Status::kOk) << response.message;
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], payloads[1]) << "the duplicate collects the "
                                         "original ack byte-for-byte";
  EXPECT_EQ(payloads[0], direct_payload({add}));
  EXPECT_EQ(cluster.replicator->version("default"), 2u);
  EXPECT_EQ(cluster.metrics.writes(), 1u);
  EXPECT_EQ(cluster.metrics.write_dedup_hits(), 1u);
  expect_backends_reconcile(cluster);
}

TEST(ClusterChaos, RetryStormAppliesEachLogicalWriteOnce) {
  // Eight logical writes ride a seeded duplicate/reset storm between the
  // client and the router. However many times each frame is delivered or
  // retried, every logical write must land exactly once and the cluster
  // must end byte-identical to a direct server that applied each write
  // once, in order.
  FaultCluster cluster({"b1", "b2", "b3"}, /*replication=*/3,
                       [](const std::string&, int) { return clean_script(); });
  ASSERT_EQ(cluster.replicator->sync_all(), 3u);

  auto exchange = [&cluster](std::string frame) {
    serve::FrameDecoder decoder;
    decoder.feed(frame);
    std::optional<std::string> payload = decoder.next();
    EXPECT_TRUE(payload.has_value());
    auto done = std::make_shared<std::promise<std::string>>();
    cluster.router->submit(std::move(*payload), [done](std::string reply) {
      done->set_value(std::move(reply));
    });
    return serve::encode_frame(done->get_future().get());
  };
  serve::FaultTransport::Options fault_options;
  fault_options.script = serve::make_retry_storm_script(64, 0x5708);
  serve::FaultTransport transport(exchange, fault_options);

  serve::RetryPolicy policy;
  policy.max_attempts = 12;
  policy.base_backoff_ms = 0.1;
  policy.max_backoff_ms = 0.5;
  serve::RetryingClient client(
      [&transport] { return serve::borrow_transport(transport); }, policy);
  client.set_sleeper([](double) {});

  constexpr std::uint64_t kWrites = 8;
  std::vector<serve::Request> reference;
  for (std::uint64_t i = 1; i <= kWrites; ++i) {
    const serve::Request add = add_beacon_request(i, {double(i), 5});
    const serve::CallResult result = client.call(add);
    ASSERT_TRUE(result.ok) << "write " << i << ": " << result.error;
    ASSERT_EQ(result.response.status, serve::Status::kOk)
        << "write " << i << ": " << result.response.message;
    reference.push_back(add);
  }
  EXPECT_GT(transport.faults_injected(), 0u) << "the storm must storm";

  // Exactly one append per logical write, regardless of delivery count.
  EXPECT_EQ(cluster.replicator->version("default"), 1 + kWrites);
  EXPECT_EQ(cluster.metrics.writes(), kWrites);
  EXPECT_GT(cluster.metrics.write_dedup_hits(), 0u)
      << "duplicates/retries must be answered from the index, not applied";

  // Byte-identical to a direct server that saw each write exactly once.
  serve::LocalizationService direct(harness_service_config());
  direct.add_field("default", harness_field());
  for (const serve::Request& request : reference) direct.handle(request);
  const std::string expected = direct.handle(snapshot_fetch()).text;
  EXPECT_EQ(cluster.replicator->log().snapshot("default").text, expected);
  ASSERT_TRUE(wait_until([&] {
    for (const std::string& name : cluster.backend_names) {
      if (cluster.backends.at(name).service->field_version("default") !=
          1 + kWrites) {
        return false;
      }
    }
    return true;
  }));
  for (const std::string& name : cluster.backend_names) {
    EXPECT_EQ(cluster.backends.at(name).service->handle(snapshot_fetch()).text,
              expected)
        << name;
  }
  expect_backends_reconcile(cluster);
}

TEST(ClusterChaos, ReadInsideTheWriteAckNeverSeesStaleCache) {
  // Read-your-writes through the response cache: a read issued from
  // *inside* the write-ack callback is the earliest moment a client can
  // legally observe its own write. The router invalidates the deployment's
  // cache entries before releasing the ack (and every lookup is fenced at
  // the acked version), so that read must reflect the write — byte-
  // identical to a direct single server that applied the same mutations.
  // If invalidation (or the fence bump) ran after the ack fired, the
  // cached pre-write response would still be live when the callback runs
  // and the bytes would diverge.
  ClusterSim cluster({"b1", "b2"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  serve::LocalizationService direct_service(harness_service_config());
  direct_service.add_field("default", harness_field());
  serve::Server direct_server(direct_service);
  auto direct = [&](const serve::Request& request) {
    std::string out;
    direct_server.submit(serve::format_request(request),
                         [&out](std::string p) { out = std::move(p); });
    direct_server.pump();
    return out;
  };

  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t base = 100 * static_cast<std::uint64_t>(round + 1);
    const serve::Request read = localize_request(base);
    // Prime the cache at the current version; also a byte-identity check.
    EXPECT_EQ(cluster.call(read), direct(read)) << "round " << round;

    // Each round's beacon lands near the queried points, so a stale cached
    // answer is guaranteed to differ from the post-write one.
    serve::Request add;
    add.seq = base + 1;
    add.endpoint = serve::Endpoint::kAddBeacon;
    add.field = "default";
    add.points = {{12.0 + round, 13.0}};
    serve::Request reread = read;
    reread.seq = base + 2;

    auto read_done = std::make_shared<std::promise<std::string>>();
    auto read_future = read_done->get_future();
    auto write_done = std::make_shared<std::promise<void>>();
    std::string ack_payload;
    cluster.router->submit(
        serve::format_request(add),
        [&, read_done, write_done](std::string payload) {
          ack_payload = std::move(payload);
          // Fire the read while still inside the ack callback — anything
          // the write path deferred past the ack release provably has not
          // run yet.
          cluster.router->submit(serve::format_request(reread),
                                 [read_done](std::string p) {
                                   read_done->set_value(std::move(p));
                                 });
          write_done->set_value();
        });
    write_done->get_future().get();
    ASSERT_EQ(serve::parse_response(ack_payload)->status, serve::Status::kOk);
    EXPECT_EQ(ack_payload, direct(add)) << "round " << round;
    EXPECT_EQ(read_future.get(), direct(reread)) << "round " << round;
  }

  EXPECT_EQ(cluster.metrics.cache_invalidations(),
            static_cast<std::uint64_t>(kRounds));
  // Every cacheable read is accounted as exactly one hit or miss — the
  // ack-released rereads can never be stale hits, because their fence moved.
  EXPECT_EQ(cluster.metrics.cache_hits() + cluster.metrics.cache_misses(),
            2u * kRounds);
}

TEST(ClusterChaos, JoinerKilledMidHandoffRollsBackThenReaddSucceeds) {
  // The joiner dies while the controller is shipping it snapshots (phase 1
  // of the handoff). The add must fail retryable, roll the table AND the
  // pool back to exactly the pre-add state — no half-joined member, no
  // epoch bump, no stray pool entry — and a later re-add of the revived
  // backend must succeed from scratch.
  ClusterSim cluster({"b1", "b2"}, /*replication=*/3);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  BackendSim& joiner = cluster.add_sim("b3");
  joiner.dead = true;  // the very first snapshot install hits a dead peer

  const serve::Response response = cluster.admin("add", "b3");
  EXPECT_EQ(response.status, serve::Status::kUnavailable);
  EXPECT_NE(response.message.find("join rolled back"), std::string::npos);
  EXPECT_EQ(cluster.membership.epoch(), 1u) << "failed join must not flip";
  EXPECT_EQ(cluster.membership.view()->members.count("b3"), 0u);
  EXPECT_FALSE(cluster.membership.view()->ring.contains("b3"));
  EXPECT_EQ(cluster.pool->health("b3"), BackendHealth::kOpen)
      << "rollback must evict the joiner from the pool";

  // The cluster it left behind still serves cleanly.
  const auto read = serve::parse_response(cluster.call(localize_request(1)));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->status, serve::Status::kOk);

  // Revive and retry: the transfer plan is recomputed from scratch, so the
  // second attempt owes nothing to the failed first.
  joiner.dead = false;
  const serve::Response retry = cluster.admin("add", "b3");
  ASSERT_EQ(retry.status, serve::Status::kOk) << retry.message;
  EXPECT_EQ(cluster.membership.epoch(), 2u);
  EXPECT_TRUE(cluster.membership.view()->ring.contains("b3"));
  EXPECT_EQ(cluster.sim("b3").service.field_version("default"),
            cluster.replicator->version("default"));
}

TEST(ClusterChaos, CrashedBackendCanStillBeDrained) {
  // Decommissioning a dead node: the victim crashes, then the operator
  // drains it. Handoff snapshots go to the *gaining* owners (all alive), a
  // dead peer's FIFO fails fast rather than stalling the queue-idle wait,
  // and the drain completes — the control plane must never require a
  // crashed backend's cooperation to remove it.
  ClusterSim cluster({"b1", "b2", "b3"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  const std::string victim = cluster.replicator->owners("default")[0];
  cluster.sim(victim).dead = true;

  const serve::Response response = cluster.admin("drain", victim);
  ASSERT_EQ(response.status, serve::Status::kOk) << response.message;
  EXPECT_EQ(cluster.membership.epoch(), 2u);
  EXPECT_EQ(cluster.membership.view()->members.count(victim), 0u);

  // The survivors own the deployment at the current version and serve both
  // planes.
  const auto owners = cluster.replicator->owners("default");
  EXPECT_EQ(std::find(owners.begin(), owners.end(), victim), owners.end());
  for (const std::string& owner : owners) {
    EXPECT_EQ(cluster.sim(owner).service.field_version("default"),
              cluster.replicator->version("default"))
        << owner;
  }
  const auto read = serve::parse_response(cluster.call(localize_request(1)));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->status, serve::Status::kOk);
  const auto write =
      serve::parse_response(cluster.call(add_beacon_request(2, {31, 7})));
  ASSERT_TRUE(write.has_value());
  EXPECT_EQ(write->status, serve::Status::kOk);
}

TEST(ClusterChaos, ScaleUpThenDrainUnderLoadIsExactlyOnce) {
  // The acceptance drill: a 2-node cluster scales to 3 and back to 2 while
  // a writer and a reader hammer it continuously. Requirements:
  //  * zero non-retryable client failures across both transitions;
  //  * zero lost or duplicated acked writes — the log's version advances
  //    exactly once per logical write, however many retries delivery took;
  //  * after both flips every owner replica is byte-identical to a
  //    never-resized direct server that applied the same writes in order.
  ClusterSim cluster({"b1", "b2"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> acked{0};
  std::atomic<std::uint64_t> non_retryable{0};
  std::vector<Vec2> applied;  // writer-local until join; then the reference

  std::thread writer([&] {
    for (std::uint64_t i = 1; !stop.load(); ++i) {
      const Vec2 point{1.0 + double(i % 50), 2.0 + double(i / 50 % 50)};
      serve::Request request = add_beacon_request(i, point);
      request.request_id = 0xACE00000ull + i;  // stable across retries
      bool landed = false;
      for (int attempt = 0; attempt < 50; ++attempt) {
        const auto response =
            serve::parse_response(cluster.call(request));
        if (response && response->status == serve::Status::kOk) {
          landed = true;
          break;
        }
        if (!response || !serve::status_retryable(response->status)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (!landed) {
        ++non_retryable;
        continue;
      }
      applied.push_back(point);
      ++acked;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread reader([&] {
    for (std::uint64_t i = 1; !stop.load(); ++i) {
      const auto response =
          serve::parse_response(cluster.call(localize_request(5000 + i)));
      if (!response || (response->status != serve::Status::kOk &&
                        !serve::status_retryable(response->status))) {
        ++non_retryable;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Scale up once writes are demonstrably in flight.
  ASSERT_TRUE(wait_until([&] { return acked.load() >= 5; }));
  cluster.add_sim("b3");
  const serve::Response grow = cluster.admin("add", "b3");
  ASSERT_EQ(grow.status, serve::Status::kOk) << grow.message;
  EXPECT_EQ(cluster.membership.epoch(), 2u);

  // Let load run on the 3-node cluster, then drain the deployment's
  // primary owner — guaranteed handoff under live writes.
  const std::uint64_t at_grow = acked.load();
  ASSERT_TRUE(wait_until([&] { return acked.load() >= at_grow + 5; }));
  const std::string victim = cluster.replicator->owners("default")[0];
  const serve::Response shrink = cluster.admin("drain", victim);
  ASSERT_EQ(shrink.status, serve::Status::kOk) << shrink.message;
  EXPECT_EQ(cluster.membership.epoch(), 3u);

  // A few post-drain writes prove the shrunk cluster still acks.
  const std::uint64_t at_drain = acked.load();
  ASSERT_TRUE(wait_until([&] { return acked.load() >= at_drain + 5; }));
  stop = true;
  writer.join();
  reader.join();

  EXPECT_EQ(non_retryable.load(), 0u);
  // Exactly-once: one log append per acked write, no extras from retries.
  EXPECT_EQ(cluster.replicator->version("default"), 1 + applied.size());
  EXPECT_EQ(cluster.metrics.writes(), applied.size());

  // Byte-identity against a never-resized reference server that applied
  // the same acked writes in the same (single-writer) order.
  serve::LocalizationService reference(harness_service_config());
  reference.add_field("default", harness_field());
  for (std::size_t i = 0; i < applied.size(); ++i) {
    serve::Request add = add_beacon_request(i + 1, applied[i]);
    ASSERT_EQ(reference.handle(add).status, serve::Status::kOk);
  }
  const std::string expected = reference.handle(snapshot_fetch()).text;
  EXPECT_EQ(cluster.replicator->log().snapshot("default").text, expected);
  const auto owners = cluster.replicator->owners("default");
  ASSERT_FALSE(owners.empty());
  ASSERT_TRUE(wait_until([&] {
    for (const std::string& owner : owners) {
      if (cluster.sim(owner).service.field_version("default") !=
          1 + applied.size()) {
        return false;
      }
    }
    return true;
  }));
  for (const std::string& owner : owners) {
    EXPECT_EQ(cluster.sim(owner).service.handle(snapshot_fetch()).text,
              expected)
        << owner;
  }
  // A routed read after it all settles answers from the resized cluster
  // with the reference bytes.
  const auto routed = serve::parse_response(cluster.call(snapshot_fetch()));
  ASSERT_TRUE(routed.has_value());
  EXPECT_EQ(routed->status, serve::Status::kOk);
  EXPECT_EQ(routed->text, expected);
}

TEST(ClusterChaos, StaleSnapshotRepairedInBand) {
  // The backend holds version 1 while the registry moves to version 2. The
  // first forwarded query answers version-mismatch; the router must ship
  // the fresh snapshot and retry on the same FIFO so the client sees a
  // clean `ok` — never the mismatch.
  FaultCluster cluster({"b1", "b2"}, /*replication=*/2,
                       [](const std::string&, int) { return clean_script(); });
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);
  cluster.replicator->set_deployment("default", field_text());

  const auto response =
      serve::parse_response(cluster.call(localize_request(1)));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kOk);

  std::uint64_t mismatches = 0;
  for (const std::string& name : cluster.backend_names) {
    mismatches += cluster.metrics.backend_snapshot(name).version_mismatches;
  }
  EXPECT_EQ(mismatches, 1u);
  expect_backends_reconcile(cluster);
}

}  // namespace
}  // namespace abp::cluster
