#include "cluster/router.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cluster/deployment_filter.h"
#include "io/field_io.h"
#include "cluster_harness.h"

namespace abp::cluster {
namespace {

std::string field_text() {
  std::ostringstream out;
  write_field(out, harness_field());
  return out.str();
}

serve::Request localize_request(std::uint64_t seq = 1,
                                const std::string& field = "default") {
  serve::Request request;
  request.seq = seq;
  request.endpoint = serve::Endpoint::kLocalize;
  request.field = field;
  request.points = {{12, 12}, {50, 50}, {20, 15}};
  return request;
}

/// The same request answered by a standalone unversioned single server —
/// the byte-level reference a routed response must match.
std::string direct_call(const serve::Request& request) {
  serve::LocalizationService service(harness_service_config());
  service.add_field("default", harness_field());
  serve::Server server(service);
  std::string out;
  server.submit(serve::format_request(request),
                [&out](std::string payload) { out = std::move(payload); });
  server.pump();
  return out;
}

TEST(Router, StatsAnsweredLocally) {
  ClusterSim cluster({"b1"});
  serve::Request request;
  request.seq = 5;
  request.endpoint = serve::Endpoint::kStats;
  const auto response = serve::parse_response(cluster.call(request));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->seq, 5u);
  EXPECT_EQ(response->status, serve::Status::kOk);
  EXPECT_EQ(response->text.rfind("abp-route-stats 1\n", 0), 0u);
  EXPECT_EQ(cluster.metrics.forwarded_total(), 0u);
}

TEST(Router, ListFieldsAnsweredLocally) {
  ClusterSim cluster({"b1"});
  cluster.replicator->set_deployment("alpha", field_text());
  serve::Request request;
  request.seq = 2;
  request.endpoint = serve::Endpoint::kListFields;
  const auto response = serve::parse_response(cluster.call(request));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kOk);
  EXPECT_EQ(response->text, "alpha\n");
}

TEST(Router, UnknownDeploymentIsNotFound) {
  ClusterSim cluster({"b1"});
  const auto response =
      serve::parse_response(cluster.call(localize_request(1, "ghost")));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kNotFound);
  EXPECT_EQ(cluster.metrics.forwarded_total(), 0u);
  // The membership filter proved the name absent — answered locally,
  // without even the registry lookup.
  EXPECT_EQ(cluster.metrics.filter_rejects(), 1u);
}

TEST(Router, RoutedResponseIsByteIdenticalToDirect) {
  ClusterSim cluster({"b1", "b2", "b3"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  const serve::Request localize = localize_request(42);
  EXPECT_EQ(cluster.call(localize), direct_call(localize));

  serve::Request error_at = localize_request(43);
  error_at.endpoint = serve::Endpoint::kErrorAt;
  EXPECT_EQ(cluster.call(error_at), direct_call(error_at));
}

TEST(Router, ClientSnapshotInstallIsRejected) {
  ClusterSim cluster({"b1"});
  cluster.replicator->set_deployment("default", field_text());
  cluster.replicator->sync_all();
  serve::Request install;
  install.seq = 9;
  install.endpoint = serve::Endpoint::kSnapshot;
  install.field = "default";
  install.text = field_text();
  const auto response = serve::parse_response(cluster.call(install));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kBadRequest);
  // A plain snapshot *fetch* routes normally.
  serve::Request fetch;
  fetch.seq = 10;
  fetch.endpoint = serve::Endpoint::kSnapshot;
  fetch.field = "default";
  const auto fetched = serve::parse_response(cluster.call(fetch));
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->status, serve::Status::kOk);
  EXPECT_EQ(fetched->text, field_text());
  EXPECT_EQ(fetched->version, 0u) << "version record must be stripped";
}

TEST(Router, FailsOverToSurvivingReplica) {
  ClusterSim cluster({"b1", "b2", "b3"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);
  const std::vector<std::string> owners =
      cluster.replicator->owners("default");
  cluster.sim(owners[0]).dead = true;

  const serve::Request request = localize_request(7);
  EXPECT_EQ(cluster.call(request), direct_call(request));
  // Forward/retry counters are recorded after the FIFO handoff, so the
  // reply (which unblocks call()) can land a hair before them.
  EXPECT_TRUE(wait_until([&] {
    return cluster.metrics.backend_snapshot(owners[1]).retries >= 1 &&
           cluster.metrics.backend_snapshot(owners[0]).transport_failures >= 1;
  }));
}

serve::Request add_beacon_request(std::uint64_t seq,
                                  std::vector<Vec2> points = {{20, 20}}) {
  serve::Request add;
  add.seq = seq;
  add.endpoint = serve::Endpoint::kAddBeacon;
  add.field = "default";
  add.points = std::move(points);
  return add;
}

TEST(Router, AddBeaconQuorumLostIsRetryableUnavailable) {
  // Both owners are needed for the majority quorum (2 of 2); one dies with
  // the mutation in flight. The client gets an honest retryable shed and
  // the write stays in the log for the survivors to converge on.
  ClusterSim cluster({"b1", "b2"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);
  const std::vector<std::string> owners =
      cluster.replicator->owners("default");
  cluster.sim(owners[0]).dead = true;

  const auto response =
      serve::parse_response(cluster.call(add_beacon_request(3)));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kUnavailable);
  EXPECT_NE(response->retry_after_ms, 0u);
  EXPECT_EQ(cluster.metrics.write_quorum_failures(), 1u);
  EXPECT_EQ(cluster.metrics.write_acks(), 0u);
  // The write was logged (version advanced) but must not fence reads.
  EXPECT_EQ(cluster.replicator->version("default"), 2u);
  EXPECT_EQ(cluster.replicator->read_version("default"), 1u);
  // The survivor still absorbed the mutation — convergence, not loss.
  ASSERT_TRUE(wait_until([&] {
    return cluster.sim(owners[1]).service.field_version("default") == 2u;
  }));
}

TEST(Router, AddBeaconReplicatesToAllOwnersAndMatchesDirect) {
  ClusterSim cluster({"b1", "b2", "b3"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);
  const std::vector<std::string> owners =
      cluster.replicator->owners("default");

  // The routed write is acknowledged with a response synthesized from the
  // log's deterministic apply — byte-identical to a direct server's.
  const serve::Request add = add_beacon_request(3, {{20, 20}, {99, -5}});
  EXPECT_EQ(cluster.call(add), direct_call(add));
  EXPECT_EQ(cluster.metrics.write_acks(), 1u);
  EXPECT_EQ(cluster.replicator->read_version("default"), 2u);

  // Every ring owner converges to a byte-identical snapshot.
  const std::string authority =
      cluster.replicator->log().snapshot("default").text;
  ASSERT_TRUE(wait_until([&] {
    for (const std::string& owner : owners) {
      if (cluster.sim(owner).service.field_version("default") != 2u) {
        return false;
      }
    }
    return true;
  }));
  serve::Request fetch;
  fetch.endpoint = serve::Endpoint::kSnapshot;
  fetch.field = "default";
  for (const std::string& owner : owners) {
    EXPECT_EQ(cluster.sim(owner).service.handle(fetch).text, authority)
        << owner;
    EXPECT_GE(cluster.metrics.backend_snapshot(owner).mutation_acks, 1u)
        << owner;
  }
}

TEST(Router, WriteThenReadIsReadYourWrites) {
  ClusterSim cluster({"b1", "b2"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  const auto write =
      serve::parse_response(cluster.call(add_beacon_request(1, {{20, 20}})));
  ASSERT_TRUE(write.has_value());
  ASSERT_EQ(write->status, serve::Status::kOk);

  // A routed snapshot fetch right after the ack must include the beacon:
  // reads are fenced at the acked version, so no stale replica can answer.
  serve::Request fetch;
  fetch.seq = 2;
  fetch.endpoint = serve::Endpoint::kSnapshot;
  fetch.field = "default";
  const auto fetched = serve::parse_response(cluster.call(fetch));
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->status, serve::Status::kOk);
  EXPECT_EQ(fetched->text, cluster.replicator->log().snapshot("default").text);
}

TEST(Router, WriteQuorumOneAcksWithADeadReplica) {
  RouterOptions options;
  options.write_quorum = 1;
  ClusterSim cluster({"b1", "b2"}, /*replication=*/2, {}, options);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);
  const std::vector<std::string> owners =
      cluster.replicator->owners("default");
  cluster.sim(owners[1]).dead = true;

  const serve::Request add = add_beacon_request(5);
  EXPECT_EQ(cluster.call(add), direct_call(add));
  EXPECT_EQ(cluster.metrics.write_acks(), 1u);
  EXPECT_EQ(cluster.replicator->read_version("default"), 2u);
}

TEST(Router, WriteShedBeforeAppendWhenQuorumInfeasible) {
  BackendPoolOptions pool_options;
  pool_options.failure_threshold = 1;
  ClusterSim cluster({"b1"}, /*replication=*/1, pool_options);
  cluster.replicator->set_deployment("default", field_text());
  cluster.replicator->sync_all();
  cluster.sim("b1").dead = true;
  // Trip the breaker so the owner is known-down before the write arrives.
  (void)cluster.call(localize_request(1));
  ASSERT_TRUE(wait_until(
      [&] { return cluster.pool->health("b1") == BackendHealth::kOpen; }));

  const auto response =
      serve::parse_response(cluster.call(add_beacon_request(2)));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kUnavailable);
  EXPECT_NE(response->retry_after_ms, 0u);
  // Shed before the append: the log is untouched, so this client retry
  // cannot duplicate anything.
  EXPECT_EQ(cluster.replicator->version("default"), 1u);
  EXPECT_EQ(cluster.metrics.writes(), 0u);
}

TEST(Router, DuplicateWriteAnswersTheOriginalAck) {
  ClusterSim cluster({"b1", "b2", "b3"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  serve::Request add = add_beacon_request(3, {{20, 20}, {99, -5}});
  add.request_id = 7001;
  const std::string first = cluster.call(add);
  ASSERT_EQ(serve::parse_response(first)->status, serve::Status::kOk);
  EXPECT_EQ(cluster.replicator->version("default"), 2u);

  // The duplicate delivery (a retry after a lost ack, or a transport-level
  // retransmit) collects the original ack byte-for-byte — no new version.
  add.attempt = 1;
  EXPECT_EQ(cluster.call(add), first);
  EXPECT_EQ(cluster.replicator->version("default"), 2u);
  EXPECT_EQ(cluster.metrics.writes(), 1u) << "one logical write, one append";
  EXPECT_EQ(cluster.metrics.write_dedup_hits(), 1u);
  // Even a same-attempt duplicate (network-level duplication) is caught.
  add.attempt = 0;
  EXPECT_EQ(cluster.call(add), first);
  EXPECT_EQ(cluster.metrics.write_dedup_hits(), 2u);
}

TEST(Router, RetryBeyondTheDedupWindowIsDedupExpired) {
  ClusterSim cluster({"b1"}, /*replication=*/1, {}, {}, /*log_retain=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 1u);

  for (std::uint64_t id = 1; id <= 3; ++id) {
    serve::Request add = add_beacon_request(id, {{double(id), 1}});
    add.request_id = 9000 + id;
    ASSERT_EQ(serve::parse_response(cluster.call(add))->status,
              serve::Status::kOk);
  }
  // Id 9001 rolled out of the 2-entry window; its retry is provably
  // unanswerable and must be refused, never silently re-appended.
  serve::Request stale = add_beacon_request(9, {{1, 1}});
  stale.request_id = 9001;
  stale.attempt = 1;
  const auto response = serve::parse_response(cluster.call(stale));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kDedupExpired);
  EXPECT_FALSE(serve::status_retryable(response->status));
  EXPECT_EQ(cluster.replicator->version("default"), 4u) << "no re-append";
  EXPECT_EQ(cluster.metrics.write_dedup_expired(), 1u);
}

TEST(Router, UnknownIdRetryAppendsWhileHistoryIsComplete) {
  // attempt > 0 with an unknown id is only ambiguous once something has
  // been evicted. With the full id history intact the miss proves the
  // first delivery never arrived, so the write must be accepted.
  ClusterSim cluster({"b1"});
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 1u);

  serve::Request add = add_beacon_request(2, {{20, 20}});
  add.request_id = 31337;
  add.attempt = 4;  // the first four deliveries all died in transit
  const auto response = serve::parse_response(cluster.call(add));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kOk);
  EXPECT_EQ(cluster.replicator->version("default"), 2u);
  EXPECT_EQ(cluster.metrics.write_dedup_expired(), 0u);
}

TEST(Router, DedupDisabledAppendsEveryDelivery) {
  RouterOptions options;
  options.dedup = false;
  ClusterSim cluster({"b1"}, /*replication=*/1, {}, options);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 1u);

  serve::Request add = add_beacon_request(3, {{20, 20}});
  add.request_id = 4242;
  ASSERT_EQ(serve::parse_response(cluster.call(add))->status,
            serve::Status::kOk);
  add.attempt = 1;
  ASSERT_EQ(serve::parse_response(cluster.call(add))->status,
            serve::Status::kOk);
  // Benchmarking mode: ids are ignored, both deliveries append.
  EXPECT_EQ(cluster.replicator->version("default"), 3u);
  EXPECT_EQ(cluster.metrics.writes(), 2u);
  EXPECT_EQ(cluster.metrics.write_dedup_hits(), 0u);
}

TEST(Router, ClientMutateIsRejected) {
  ClusterSim cluster({"b1"});
  cluster.replicator->set_deployment("default", field_text());
  cluster.replicator->sync_all();
  serve::Request mutate;
  mutate.seq = 8;
  mutate.endpoint = serve::Endpoint::kMutate;
  mutate.field = "default";
  mutate.points = {{20, 20}};
  mutate.version = 2;
  const auto response = serve::parse_response(cluster.call(mutate));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kBadRequest);
  EXPECT_EQ(cluster.metrics.forwarded_total(), 0u);
}

TEST(Router, EmptyAddBeaconMatchesDirectRejection) {
  ClusterSim cluster({"b1"});
  cluster.replicator->set_deployment("default", field_text());
  cluster.replicator->sync_all();
  const serve::Request add = add_beacon_request(4, {});
  EXPECT_EQ(cluster.call(add), direct_call(add));
  EXPECT_EQ(cluster.metrics.writes(), 0u) << "rejected before the append";
}

TEST(Router, VersionProbeRoutesAndKeepsTheVersionRecord) {
  ClusterSim cluster({"b1"});
  cluster.replicator->set_deployment("default", field_text());
  cluster.replicator->sync_all();
  serve::Request probe;
  probe.seq = 6;
  probe.endpoint = serve::Endpoint::kVersion;
  probe.field = "default";
  const auto response = serve::parse_response(cluster.call(probe));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kOk);
  EXPECT_EQ(response->version, 1u)
      << "version probes keep the version record — it is the answer";
}

TEST(Router, AllReplicasDownIsRetryableUnavailable) {
  BackendPoolOptions options;
  options.failure_threshold = 1;
  ClusterSim cluster({"b1"}, 1, options);
  cluster.replicator->set_deployment("default", field_text());
  cluster.replicator->sync_all();
  cluster.sim("b1").dead = true;

  // First call hits the live-looking backend, fails, and has no replica
  // left to try.
  const auto first = serve::parse_response(cluster.call(localize_request(1)));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->status, serve::Status::kUnavailable);
  EXPECT_NE(first->retry_after_ms, 0u);
  EXPECT_TRUE(serve::status_retryable(first->status));

  // The failure tripped the breaker (threshold 1): the next call is refused
  // at enqueue and answered unrouted.
  ASSERT_TRUE(wait_until(
      [&] { return cluster.pool->health("b1") == BackendHealth::kOpen; }));
  const auto second =
      serve::parse_response(cluster.call(localize_request(2)));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, serve::Status::kUnavailable);
  EXPECT_EQ(cluster.metrics.unrouted(), 1u);
}

TEST(Router, StaleBackendIsRepairedViaInstallThenRetry) {
  ClusterSim cluster({"b1"}, 1);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 1u);
  ASSERT_EQ(cluster.sim("b1").service.field_version("default"), 1u);

  // Bump the registry without pushing: the backend is now stale.
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->version("default"), 2u);

  const serve::Request request = localize_request(11);
  EXPECT_EQ(cluster.call(request), direct_call(request));
  EXPECT_EQ(cluster.sim("b1").service.field_version("default"), 2u)
      << "the mismatch repair must install the fresh snapshot";
  EXPECT_EQ(cluster.metrics.backend_snapshot("b1").version_mismatches, 1u);
  EXPECT_EQ(cluster.metrics.backend_snapshot("b1").installs, 2u);
}

TEST(Router, UnparseablePayloadIsBadRequest) {
  ClusterSim cluster({"b1"});
  std::string out;
  cluster.router->submit("definitely not a request\n",
                         [&out](std::string payload) { out = payload; });
  const auto response = serve::parse_response(out);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, serve::Status::kBadRequest);
}

TEST(Router, ShedOverloadedCarriesHint) {
  ClusterSim cluster({"b1"});
  std::string out;
  cluster.router->shed_overloaded(
      serve::format_request(localize_request(4)),
      [&out](std::string payload) { out = payload; }, "router full");
  const auto response = serve::parse_response(out);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->seq, 4u);
  EXPECT_EQ(response->status, serve::Status::kOverloaded);
  EXPECT_EQ(response->message, "router full");
  EXPECT_NE(response->retry_after_ms, 0u);
}

TEST(Router, CachedReadIsByteIdenticalToUncachedAndDirect) {
  ClusterSim cluster({"b1", "b2"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  // First read misses, forwards, and seeds the cache; it must already be
  // byte-identical to a direct single-server answer.
  const serve::Request first = localize_request(42);
  const std::string uncached = cluster.call(first);
  EXPECT_EQ(uncached, direct_call(first));
  EXPECT_EQ(cluster.metrics.cache_misses(), 1u);
  EXPECT_EQ(cluster.metrics.cache_hits(), 0u);
  ASSERT_TRUE(wait_until([&] { return cluster.metrics.forwarded_total() == 1u; }));

  // The repeat is served from memory — same bytes, no backend round-trip.
  EXPECT_EQ(cluster.call(first), uncached);
  EXPECT_EQ(cluster.metrics.cache_hits(), 1u);
  EXPECT_EQ(cluster.metrics.forwarded_total(), 1u);

  // A different tenant retrying under a different seq shares the entry; the
  // hit is re-stamped with the requester's seq and still matches a direct
  // server answering that exact request.
  serve::Request second = localize_request(43);
  second.principal = 5;
  const std::string restamped = cluster.call(second);
  EXPECT_EQ(cluster.metrics.cache_hits(), 2u);
  EXPECT_EQ(cluster.metrics.forwarded_total(), 1u);
  serve::Request reference = localize_request(43);
  EXPECT_EQ(restamped, direct_call(reference));
}

TEST(Router, QuorumAckedWriteInvalidatesTheDeploymentsCache) {
  ClusterSim cluster({"b1", "b2"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  // Seed the cache at version 1.
  const serve::Request read = localize_request(1);
  (void)cluster.call(read);
  ASSERT_EQ(cluster.metrics.cache_misses(), 1u);

  // The acked write must have dropped the deployment's entries — the
  // invalidation lands before the ack fires, so by the time call() returns
  // the counters are visible.
  ASSERT_EQ(serve::parse_response(cluster.call(add_beacon_request(2)))->status,
            serve::Status::kOk);
  EXPECT_EQ(cluster.metrics.cache_invalidations(), 1u);
  EXPECT_EQ(cluster.metrics.cache_entries_invalidated(), 1u);

  // The next read misses (no stale hit) and reflects the new beacon:
  // byte-identical to a direct server that applied the same write.
  serve::Request reread = localize_request(3);
  const std::string routed = cluster.call(reread);
  EXPECT_EQ(cluster.metrics.cache_hits(), 0u);
  EXPECT_EQ(cluster.metrics.cache_misses(), 2u);

  serve::LocalizationService service(harness_service_config());
  service.add_field("default", harness_field());
  serve::Server server(service);
  std::string direct;
  server.submit(serve::format_request(add_beacon_request(2)),
                [&](std::string payload) { direct = std::move(payload); });
  server.pump();
  server.submit(serve::format_request(reread),
                [&](std::string payload) { direct = std::move(payload); });
  server.pump();
  EXPECT_EQ(routed, direct);
}

TEST(Router, CacheDisabledForwardsEveryRead) {
  RouterOptions options;
  options.cache_entries = 0;  // --cache 0
  ClusterSim cluster({"b1"}, /*replication=*/1, {}, options);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 1u);

  const serve::Request request = localize_request(7);
  const std::string first = cluster.call(request);
  EXPECT_EQ(cluster.call(request), first) << "bytes must not depend on cache";
  EXPECT_EQ(first, direct_call(request));
  EXPECT_EQ(cluster.metrics.cache_hits(), 0u);
  EXPECT_EQ(cluster.metrics.cache_misses(), 0u);
  ASSERT_TRUE(
      wait_until([&] { return cluster.metrics.forwarded_total() == 2u; }));
}

TEST(Router, FilterFalsePositiveFallsThroughToTheRegistry) {
  ClusterSim cluster({"b1"});
  std::vector<std::string> names;
  for (int i = 0; i < 40; ++i) {
    names.push_back("field-" + std::to_string(i));
    cluster.replicator->set_deployment(names.back(), field_text());
  }

  // Rebuild the same filter the replicator published and brute-force a
  // name it cannot rule out (deterministic hashing — see
  // deployment_filter_test). That name is *not* deployed, so the router
  // must fall through to the registry and answer the identical not-found.
  DeploymentFilter filter;
  filter.rebuild(names);
  std::string fp, definite;
  for (int i = 0; i < 200000 && (fp.empty() || definite.empty()); ++i) {
    const std::string candidate = "ghost-" + std::to_string(i);
    if (filter.may_contain(candidate)) {
      if (fp.empty()) fp = candidate;
    } else if (definite.empty()) {
      definite = candidate;
    }
  }
  ASSERT_FALSE(fp.empty());
  ASSERT_FALSE(definite.empty());
  ASSERT_TRUE(cluster.replicator->possibly_deployed(fp));
  ASSERT_FALSE(cluster.replicator->possibly_deployed(definite));

  const auto through =
      serve::parse_response(cluster.call(localize_request(1, fp)));
  ASSERT_TRUE(through.has_value());
  EXPECT_EQ(through->status, serve::Status::kNotFound);
  EXPECT_EQ(through->message, "unknown deployment '" + fp + "'");
  EXPECT_EQ(cluster.metrics.filter_rejects(), 0u)
      << "a false positive is not a filter reject — the registry answered";

  const auto rejected =
      serve::parse_response(cluster.call(localize_request(2, definite)));
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->status, serve::Status::kNotFound);
  EXPECT_EQ(rejected->message, "unknown deployment '" + definite + "'");
  EXPECT_EQ(cluster.metrics.filter_rejects(), 1u);
  EXPECT_EQ(cluster.metrics.forwarded_total(), 0u);
}

TEST(Router, QuotaShedsNoisyPrincipalAndKeepsStatsReachable) {
  RouterOptions options;
  options.quota.rps = 2.0;  // one token every 500 ms
  options.quota.burst = 2.0;
  double now = 0.0;
  options.clock_ms = [&now] { return now; };
  ClusterSim cluster({"b1"}, /*replication=*/1, {}, options);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 1u);

  serve::Request request = localize_request(1);
  request.principal = 7;
  ASSERT_EQ(serve::parse_response(cluster.call(request))->status,
            serve::Status::kOk);
  request.seq = 2;
  request.points = {{50, 50}};
  ASSERT_EQ(serve::parse_response(cluster.call(request))->status,
            serve::Status::kOk);
  request.seq = 3;
  const auto shed = serve::parse_response(cluster.call(request));
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, serve::Status::kOverloaded);
  EXPECT_TRUE(serve::status_retryable(shed->status));
  EXPECT_EQ(shed->retry_after_ms, 500u);
  EXPECT_NE(shed->message.find("principal 7"), std::string::npos);

  // Another tenant's bucket is untouched.
  serve::Request other = localize_request(4);
  other.principal = 8;
  EXPECT_EQ(serve::parse_response(cluster.call(other))->status,
            serve::Status::kOk);

  // Router-local introspection is quota-exempt: a drained bucket can still
  // read stats.
  serve::Request stats;
  stats.seq = 5;
  stats.endpoint = serve::Endpoint::kStats;
  stats.principal = 7;
  EXPECT_EQ(serve::parse_response(cluster.call(stats))->status,
            serve::Status::kOk);

  EXPECT_EQ(cluster.metrics.quota_sheds(), 1u);
  EXPECT_EQ(cluster.metrics.principal_quota_sheds(7), 1u);
  EXPECT_EQ(cluster.metrics.principal_received(7), 4u);
  EXPECT_EQ(cluster.metrics.principal_quota_sheds(8), 0u);

  // Following the hint on the injected clock is admitted again.
  now += shed->retry_after_ms;
  request.seq = 6;
  EXPECT_EQ(serve::parse_response(cluster.call(request))->status,
            serve::Status::kOk);
}

TEST(Router, SnapshotExposesCacheFilterAndPrincipalCounters) {
  ClusterSim cluster({"b1"});
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 1u);

  serve::Request request = localize_request(1);
  request.principal = 9;
  (void)cluster.call(request);
  (void)cluster.call(request);                      // cache hit
  (void)cluster.call(localize_request(3, "ghost")); // filter reject

  const MetricsSnapshot snap = cluster.metrics.snapshot();
  EXPECT_EQ(snap.schema(), "abp-route-stats 1");
  EXPECT_EQ(snap.count("cache.hits"), 1u);
  EXPECT_EQ(snap.count("cache.misses"), 1u);
  EXPECT_EQ(snap.count("router.filter-rejects"), 1u);
  EXPECT_EQ(snap.count("principal.9.received"), 2u);
  EXPECT_EQ(snap.count("router.received"), 3u);
  EXPECT_TRUE(snap.has("backend.b1.forwarded"));
  EXPECT_EQ(cluster.metrics.render_text(), snap.render_text());
}

}  // namespace
}  // namespace abp::cluster
