#include "cluster/replicator.h"

#include <gtest/gtest.h>

#include <sstream>

#include "io/field_io.h"
#include "cluster_harness.h"

namespace abp::cluster {
namespace {

std::string field_text() {
  std::ostringstream out;
  write_field(out, harness_field());
  return out.str();
}

TEST(Replicator, VersionsStartAtOneAndBump) {
  ClusterSim cluster({"b1"});
  EXPECT_EQ(cluster.replicator->version("f"), 0u);
  EXPECT_EQ(cluster.replicator->set_deployment("f", field_text()), 1u);
  EXPECT_EQ(cluster.replicator->version("f"), 1u);
  EXPECT_EQ(cluster.replicator->set_deployment("f", field_text()), 2u);
  EXPECT_EQ(cluster.replicator->version("f"), 2u);
}

TEST(Replicator, InstallRequestCarriesSnapshotAndVersion) {
  ClusterSim cluster({"b1"});
  cluster.replicator->set_deployment("f", field_text());
  const serve::Request install = cluster.replicator->install_request("f");
  EXPECT_EQ(install.endpoint, serve::Endpoint::kSnapshot);
  EXPECT_EQ(install.field, "f");
  EXPECT_EQ(install.version, 1u);
  EXPECT_EQ(install.text, field_text());
}

TEST(Replicator, SyncAllInstallsOnEveryOwner) {
  ClusterSim cluster({"b1", "b2", "b3"}, /*replication=*/2);
  cluster.replicator->set_deployment("f", field_text());
  const std::vector<std::string> owners = cluster.replicator->owners("f");
  ASSERT_EQ(owners.size(), 2u);
  EXPECT_EQ(cluster.replicator->sync_all(), 2u);
  for (const std::string& owner : owners) {
    EXPECT_EQ(cluster.sim(owner).service.field_version("f"), 1u)
        << owner;
    EXPECT_EQ(cluster.metrics.backend_snapshot(owner).installs, 1u);
  }
  // Non-owners never saw the deployment.
  for (const std::string& name : cluster.backend_names) {
    bool owner = false;
    for (const std::string& o : owners) owner = owner || o == name;
    if (!owner) {
      EXPECT_EQ(cluster.sim(name).service.field_version("f"), 0u) << name;
    }
  }
}

TEST(Replicator, SyncAllCountsOnlySuccessfulInstalls) {
  ClusterSim cluster({"b1", "b2"}, /*replication=*/2);
  cluster.replicator->set_deployment("f", field_text());
  const std::vector<std::string> owners = cluster.replicator->owners("f");
  cluster.sim(owners[0]).dead = true;
  EXPECT_EQ(cluster.replicator->sync_all(), 1u);
  EXPECT_EQ(cluster.sim(owners[1]).service.field_version("f"), 1u);
}

TEST(Replicator, SyncBackendPushesOnlyOwnedDeployments) {
  ClusterSim cluster({"b1", "b2", "b3"}, /*replication=*/1);
  // Register enough deployments that (with high probability over the fixed
  // hash) every backend owns at least one; then resync a single backend.
  std::vector<std::string> names;
  for (int i = 0; i < 9; ++i) names.push_back("f" + std::to_string(i));
  for (const std::string& name : names) {
    cluster.replicator->set_deployment(name, field_text());
  }
  const std::string target = cluster.backend_names[0];
  cluster.replicator->sync_backend(target);
  // Wait for every owned deployment to land.
  std::vector<std::string> owned;
  for (const std::string& name : names) {
    if (cluster.replicator->owners(name)[0] == target) owned.push_back(name);
  }
  ASSERT_FALSE(owned.empty());
  ASSERT_TRUE(wait_until([&] {
    for (const std::string& name : owned) {
      if (cluster.sim(target).service.field_version(name) != 1u) return false;
    }
    return true;
  }));
  // Deployments owned elsewhere were not pushed to `target`.
  for (const std::string& name : names) {
    if (cluster.replicator->owners(name)[0] != target) {
      EXPECT_EQ(cluster.sim(target).service.field_version(name), 0u) << name;
    }
  }
}

TEST(Replicator, MutateRequestCarriesEntryPointsAndVersion) {
  ClusterSim cluster({"b1"});
  MutationLog::Entry entry;
  entry.version = 7;
  entry.points = {{20, 20}, {5, 50}};
  const serve::Request mutate = cluster.replicator->mutate_request("f", entry);
  EXPECT_EQ(mutate.endpoint, serve::Endpoint::kMutate);
  EXPECT_EQ(mutate.field, "f");
  EXPECT_EQ(mutate.version, 7u);
  EXPECT_EQ(mutate.points, entry.points);
}

TEST(Replicator, ReadVersionTracksAcksNotAppends) {
  ClusterSim cluster({"b1"});
  cluster.replicator->set_deployment("f", field_text());
  EXPECT_EQ(cluster.replicator->read_version("f"), 1u);
  cluster.replicator->log().append("f", {{20, 20}});
  EXPECT_EQ(cluster.replicator->version("f"), 2u);
  EXPECT_EQ(cluster.replicator->read_version("f"), 1u)
      << "an unacked write must not fence reads";
  cluster.replicator->log().record_acked("f", 2);
  EXPECT_EQ(cluster.replicator->read_version("f"), 2u);
}

TEST(Replicator, SyncBackendReplaysSuffixWhenRetained) {
  ClusterSim cluster({"b1"}, /*replication=*/1);
  cluster.replicator->set_deployment("f", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 1u);
  // Two writes land in the log while the backend (hypothetically
  // partitioned) misses them.
  cluster.replicator->log().append("f", {{20, 20}});
  cluster.replicator->log().append("f", {{5, 50}});
  ASSERT_EQ(cluster.sim("b1").service.field_version("f"), 1u);

  cluster.replicator->sync_backend("b1");
  ASSERT_TRUE(wait_until(
      [&] { return cluster.sim("b1").service.field_version("f") == 3u; }));
  // Replayed, not resynced: the install count stays at the startup sync.
  EXPECT_EQ(cluster.metrics.backend_snapshot("b1").installs, 1u);
  EXPECT_EQ(cluster.metrics.backend_snapshot("b1").replays, 2u);
  // The replayed replica is byte-identical to the log's authority.
  serve::Request fetch;
  fetch.endpoint = serve::Endpoint::kSnapshot;
  fetch.field = "f";
  serve::Response snapshot = cluster.sim("b1").service.handle(fetch);
  EXPECT_EQ(snapshot.text, cluster.replicator->log().snapshot("f").text);
}

TEST(Replicator, SyncBackendResyncsBeyondTheRetainedWindow) {
  ClusterSim cluster({"b1"}, /*replication=*/1, {}, {}, /*log_retain=*/1);
  cluster.replicator->set_deployment("f", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 1u);
  cluster.replicator->log().append("f", {{20, 20}});  // v2 (evicted)
  cluster.replicator->log().append("f", {{5, 50}});   // v3 (retained)
  ASSERT_FALSE(cluster.replicator->log().suffix("f", 1).has_value());

  cluster.replicator->sync_backend("b1");
  ASSERT_TRUE(wait_until(
      [&] { return cluster.sim("b1").service.field_version("f") == 3u; }));
  // Resynced with a full snapshot: a second install, no replays.
  EXPECT_EQ(cluster.metrics.backend_snapshot("b1").installs, 2u);
  EXPECT_EQ(cluster.metrics.backend_snapshot("b1").replays, 0u);
}

TEST(Replicator, ListTextEnumeratesDeployments) {
  ClusterSim cluster({"b1"});
  cluster.replicator->set_deployment("alpha", field_text());
  cluster.replicator->set_deployment("beta", field_text());
  EXPECT_EQ(cluster.replicator->list_text(), "alpha\nbeta\n");
}

}  // namespace
}  // namespace abp::cluster
