/// \file membership_test.cc
/// \brief Membership control plane: table state machine, epoch discipline,
/// and the controller's add/drain flows over the admin wire endpoint.
#include "cluster/membership.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "io/field_io.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "cluster_harness.h"

namespace abp::cluster {
namespace {

std::string field_text() {
  std::ostringstream out;
  write_field(out, harness_field());
  return out.str();
}

// ---- MembershipTable state machine --------------------------------------

TEST(MembershipTable, SeedsActiveMembersAtEpochOne) {
  const MembershipTable table({"b1", "b2"});
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_EQ(table.count(MemberState::kActive), 2u);
  EXPECT_EQ(table.count(MemberState::kJoining), 0u);
  EXPECT_EQ(table.count(MemberState::kDraining), 0u);
  const auto view = table.view();
  EXPECT_EQ(view->epoch, 1u);
  EXPECT_TRUE(view->ring.contains("b1"));
  EXPECT_TRUE(view->ring.contains("b2"));
}

TEST(MembershipTable, JoinActivateLifecycleBumpsEpochOnceAtTheFlip) {
  MembershipTable table({"b1"});
  EXPECT_TRUE(table.begin_join("b2"));
  // A joiner is a member but not a ring node, and the ring is unchanged,
  // so the epoch holds.
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_EQ(table.count(MemberState::kJoining), 1u);
  EXPECT_FALSE(table.view()->ring.contains("b2"));

  EXPECT_TRUE(table.activate("b2"));
  EXPECT_EQ(table.epoch(), 2u);
  EXPECT_TRUE(table.view()->ring.contains("b2"));
  EXPECT_EQ(table.count(MemberState::kActive), 2u);
}

TEST(MembershipTable, DrainRemoveLifecycle) {
  MembershipTable table({"b1", "b2"});
  EXPECT_TRUE(table.begin_drain("b2"));
  EXPECT_EQ(table.epoch(), 2u);
  EXPECT_FALSE(table.view()->ring.contains("b2"));
  EXPECT_EQ(table.count(MemberState::kDraining), 1u);

  EXPECT_TRUE(table.remove("b2"));
  // Removal only touches bookkeeping — the ring already dropped it at the
  // drain flip, so no second epoch bump.
  EXPECT_EQ(table.epoch(), 2u);
  EXPECT_EQ(table.view()->members.count("b2"), 0u);
}

TEST(MembershipTable, IllegalTransitionsAreRefused) {
  MembershipTable table({"b1", "b2"});
  EXPECT_FALSE(table.begin_join("b1")) << "already a member";
  EXPECT_FALSE(table.activate("b1")) << "active, not joining";
  EXPECT_FALSE(table.activate("ghost"));
  EXPECT_FALSE(table.remove("b1")) << "active members must drain first";
  EXPECT_FALSE(table.begin_drain("ghost"));

  ASSERT_TRUE(table.begin_join("b3"));
  EXPECT_FALSE(table.begin_drain("b3")) << "joining, not active";
  EXPECT_TRUE(table.remove("b3")) << "aborting a join is legal";

  ASSERT_TRUE(table.begin_drain("b2"));
  EXPECT_FALSE(table.begin_drain("b1"))
      << "the last active member can never drain";
  EXPECT_EQ(table.epoch(), 2u) << "refused transitions must not bump";
}

TEST(MembershipTable, PublishedViewsAreImmutableSnapshots) {
  MembershipTable table({"b1", "b2"});
  const auto before = table.view();
  ASSERT_TRUE(table.begin_drain("b2"));
  // The old generation still describes epoch 1 — readers holding it see a
  // consistent (if stale) placement, never a torn one.
  EXPECT_EQ(before->epoch, 1u);
  EXPECT_TRUE(before->ring.contains("b2"));
  EXPECT_EQ(table.view()->epoch, 2u);
}

// ---- controller add / drain over the wire -------------------------------

serve::Request localize_request(std::uint64_t seq) {
  serve::Request request;
  request.seq = seq;
  request.endpoint = serve::Endpoint::kLocalize;
  request.field = "default";
  request.points = {{12, 12}};
  return request;
}

serve::Request add_beacon_request(std::uint64_t seq, Vec2 point) {
  serve::Request request;
  request.seq = seq;
  request.endpoint = serve::Endpoint::kAddBeacon;
  request.field = "default";
  request.points = {point};
  return request;
}

serve::Request snapshot_fetch() {
  serve::Request fetch;
  fetch.seq = 99;
  fetch.endpoint = serve::Endpoint::kSnapshot;
  fetch.field = "default";
  return fetch;
}

TEST(MembershipController, AddShipsStateThenFlipsTheEpoch) {
  ClusterSim cluster({"b1", "b2"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  cluster.add_sim("b3");
  const serve::Response response = cluster.admin("add", "b3");
  ASSERT_EQ(response.status, serve::Status::kOk) << response.message;
  EXPECT_NE(response.text.find("added b3"), std::string::npos);
  EXPECT_NE(response.text.find("epoch 2"), std::string::npos);

  EXPECT_EQ(cluster.membership.epoch(), 2u);
  EXPECT_TRUE(cluster.membership.view()->ring.contains("b3"));
  EXPECT_EQ(cluster.membership.count(MemberState::kActive), 3u);
  EXPECT_EQ(cluster.membership.count(MemberState::kJoining), 0u);
  EXPECT_EQ(cluster.metrics.membership_epoch(), 2u);
  EXPECT_EQ(cluster.metrics.membership_active(), 3u);

  // replication 2 of 3 backends: b3 gained "default" iff the new ring says
  // so; either way it must hold the current version if it is an owner.
  const auto owners = cluster.replicator->owners("default");
  const bool owner = std::find(owners.begin(), owners.end(), "b3") !=
                     owners.end();
  if (owner) {
    EXPECT_GE(cluster.metrics.handoff_snapshots(), 1u);
    EXPECT_EQ(cluster.sim("b3").service.field_version("default"),
              cluster.replicator->version("default"));
  }

  // The cluster still serves: a routed read and a quorum write both land.
  const auto read = serve::parse_response(cluster.call(localize_request(1)));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->status, serve::Status::kOk);
  const auto write =
      serve::parse_response(cluster.call(add_beacon_request(2, {20, 20})));
  ASSERT_TRUE(write.has_value());
  EXPECT_EQ(write->status, serve::Status::kOk);
}

TEST(MembershipController, AddedBackendReceivesLiveWritesByteIdentically) {
  ClusterSim cluster({"b1", "b2"}, /*replication=*/3);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  // Writes land before the join, so the joiner must receive them through
  // the handoff (snapshot at current version), not miss them.
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto ack = serve::parse_response(
        cluster.call(add_beacon_request(i + 1, {double(5 * i + 5), 8})));
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->status, serve::Status::kOk);
  }

  cluster.add_sim("b3");
  ASSERT_EQ(cluster.admin("add", "b3").status, serve::Status::kOk);

  // Replication 3 covers all backends: the joiner owns everything and must
  // be byte-identical to the log authority immediately — no async repair.
  const std::string authority =
      cluster.replicator->log().snapshot("default").text;
  EXPECT_EQ(cluster.sim("b3").service.handle(snapshot_fetch()).text,
            authority);

  // And writes after the flip reach it too.
  const auto ack = serve::parse_response(
      cluster.call(add_beacon_request(10, {44, 44})));
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->status, serve::Status::kOk);
  ASSERT_TRUE(wait_until([&] {
    return cluster.sim("b3").service.field_version("default") ==
           cluster.replicator->version("default");
  }));
  EXPECT_EQ(cluster.sim("b3").service.handle(snapshot_fetch()).text,
            cluster.replicator->log().snapshot("default").text);
}

TEST(MembershipController, DrainHandsOffStopsRoutingAndRemoves) {
  ClusterSim cluster({"b1", "b2", "b3"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  ASSERT_EQ(cluster.replicator->sync_all(), 2u);

  const auto owners_before = cluster.replicator->owners("default");
  const std::string victim = owners_before[0];

  const serve::Response response = cluster.admin("drain", victim);
  ASSERT_EQ(response.status, serve::Status::kOk) << response.message;
  EXPECT_NE(response.text.find("drained " + victim), std::string::npos);

  EXPECT_EQ(cluster.membership.epoch(), 2u);
  EXPECT_FALSE(cluster.membership.view()->ring.contains(victim));
  EXPECT_EQ(cluster.membership.view()->members.count(victim), 0u);
  // The pool dropped it too: health of a removed backend reads open.
  EXPECT_EQ(cluster.pool->health(victim), BackendHealth::kOpen);

  // The deployment's new owners hold current state and serve reads/writes.
  const auto owners_after = cluster.replicator->owners("default");
  EXPECT_EQ(std::find(owners_after.begin(), owners_after.end(), victim),
            owners_after.end());
  for (const std::string& owner : owners_after) {
    EXPECT_EQ(cluster.sim(owner).service.field_version("default"),
              cluster.replicator->version("default"))
        << owner;
  }
  const auto read = serve::parse_response(cluster.call(localize_request(1)));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->status, serve::Status::kOk);
  const auto write =
      serve::parse_response(cluster.call(add_beacon_request(2, {25, 25})));
  ASSERT_TRUE(write.has_value());
  EXPECT_EQ(write->status, serve::Status::kOk);
}

TEST(MembershipController, AddRejectsDuplicatesAndDrainRejectsUnknown) {
  ClusterSim cluster({"b1", "b2"}, /*replication=*/1);
  cluster.replicator->set_deployment("default", field_text());
  cluster.replicator->sync_all();

  EXPECT_EQ(cluster.admin("add", "b1").status, serve::Status::kBadRequest);
  EXPECT_EQ(cluster.admin("drain", "ghost").status,
            serve::Status::kNotFound);
  EXPECT_EQ(cluster.admin("add").status, serve::Status::kBadRequest)
      << "add without a backend address";
  EXPECT_EQ(cluster.membership.epoch(), 1u)
      << "refused verbs must not bump the epoch";
}

TEST(MembershipController, DrainingTheLastBackendIsRefused) {
  ClusterSim cluster({"b1"}, /*replication=*/1);
  cluster.replicator->set_deployment("default", field_text());
  cluster.replicator->sync_all();
  const serve::Response response = cluster.admin("drain", "b1");
  EXPECT_EQ(response.status, serve::Status::kBadRequest);
  EXPECT_TRUE(cluster.membership.view()->ring.contains("b1"));
}

// ---- the admin wire endpoint --------------------------------------------

TEST(AdminEndpoint, StatusReportsMembersAndHandoffCounters) {
  ClusterSim cluster({"b1", "b2"}, /*replication=*/1);
  const serve::Response response = cluster.admin("status");
  ASSERT_EQ(response.status, serve::Status::kOk);
  EXPECT_NE(response.text.find("epoch 1"), std::string::npos);
  EXPECT_NE(response.text.find("member b1 active"), std::string::npos);
  EXPECT_NE(response.text.find("member b2 active"), std::string::npos);
  EXPECT_NE(response.text.find("handoff-snapshots 0"), std::string::npos);
  EXPECT_NE(response.text.find("handoff-replays 0"), std::string::npos);
}

TEST(AdminEndpoint, UnknownVerbIsBadRequest) {
  ClusterSim cluster({"b1"}, /*replication=*/1);
  const serve::Response response = cluster.admin("explode", "b1");
  EXPECT_EQ(response.status, serve::Status::kBadRequest);
  EXPECT_NE(response.message.find("explode"), std::string::npos);
}

TEST(AdminEndpoint, DisabledRouterRejectsAllVerbs) {
  RouterOptions options;
  options.admin = false;
  ClusterSim cluster({"b1"}, /*replication=*/1, {}, options);
  EXPECT_EQ(cluster.admin("status").status, serve::Status::kBadRequest);
  cluster.add_sim("b2");
  EXPECT_EQ(cluster.admin("add", "b2").status, serve::Status::kBadRequest);
  EXPECT_EQ(cluster.membership.epoch(), 1u);
}

TEST(AdminEndpoint, DirectServerRejectsAdmin) {
  // A backend reached directly must refuse membership verbs: the table
  // lives in the router, and `internal_only` + the service-side check keep
  // clients from driving a backend's nonexistent control plane.
  serve::LocalizationService service(harness_service_config());
  service.add_field("default", harness_field());
  serve::Request request;
  request.endpoint = serve::Endpoint::kAdmin;
  request.algorithm = "status";
  const serve::Response response = service.handle(request);
  EXPECT_EQ(response.status, serve::Status::kBadRequest);
  EXPECT_NE(response.message.find("router-only"), std::string::npos);
}

TEST(AdminEndpoint, RouterStatsExposeMembershipCounters) {
  ClusterSim cluster({"b1", "b2"}, /*replication=*/2);
  cluster.replicator->set_deployment("default", field_text());
  cluster.replicator->sync_all();
  cluster.add_sim("b3");
  ASSERT_EQ(cluster.admin("add", "b3").status, serve::Status::kOk);

  serve::Request stats;
  stats.seq = 5;
  stats.endpoint = serve::Endpoint::kStats;
  const auto response = serve::parse_response(cluster.call(stats));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, serve::Status::kOk);
  EXPECT_NE(response->text.find("membership.epoch 2"), std::string::npos);
  EXPECT_NE(response->text.find("membership.active 3"), std::string::npos);
  EXPECT_NE(response->text.find("membership.joining 0"), std::string::npos);
  EXPECT_NE(response->text.find("membership.draining 0"), std::string::npos);
  EXPECT_NE(response->text.find("handoff.snapshots"), std::string::npos);
  EXPECT_NE(response->text.find("handoff.replays"), std::string::npos);
}

}  // namespace
}  // namespace abp::cluster
