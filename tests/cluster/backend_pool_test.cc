#include "cluster/backend_pool.h"

#include <gtest/gtest.h>

#include <future>

#include "cluster/ring.h"
#include "serve/fault_transport.h"
#include "cluster_harness.h"

namespace abp::cluster {
namespace {

serve::Request stats_request(std::uint64_t seq = 1) {
  serve::Request request;
  request.seq = seq;
  request.endpoint = serve::Endpoint::kStats;
  return request;
}

TEST(BackendPool, ForwardDeliversDecodedPayload) {
  ClusterSim cluster({"b1"});
  auto done = std::make_shared<std::promise<std::string>>();
  auto future = done->get_future();
  BackendPool::Forward forward;
  forward.request = stats_request(7);
  forward.on_reply = [done](std::string payload) {
    done->set_value(std::move(payload));
  };
  forward.on_failure = [] { FAIL() << "unexpected failure"; };
  ASSERT_TRUE(cluster.pool->enqueue("b1", std::move(forward)));
  const std::string payload = future.get();
  // The pool strips framing: the callback sees a parseable payload.
  const auto response = serve::parse_response(payload);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->seq, 7u);
  EXPECT_EQ(response->status, serve::Status::kOk);
}

TEST(BackendPool, RepliesComeBackInEnqueueOrder) {
  ClusterSim cluster({"b1"});
  std::mutex mu;
  std::vector<std::uint64_t> order;
  auto done = std::make_shared<std::promise<void>>();
  constexpr std::uint64_t kCount = 8;
  for (std::uint64_t seq = 1; seq <= kCount; ++seq) {
    BackendPool::Forward forward;
    forward.request = stats_request(seq);
    forward.on_reply = [&, done](std::string payload) {
      const auto response = serve::parse_response(payload);
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(response ? response->seq : 0);
      if (order.size() == kCount) done->set_value();
    };
    forward.on_failure = [] { FAIL() << "unexpected failure"; };
    ASSERT_TRUE(cluster.pool->enqueue("b1", std::move(forward)));
  }
  done->get_future().get();
  for (std::uint64_t seq = 1; seq <= kCount; ++seq) {
    EXPECT_EQ(order[seq - 1], seq);
  }
}

TEST(BackendPool, UnknownBackendIsRefused) {
  ClusterSim cluster({"b1"});
  BackendPool::Forward forward;
  forward.request = stats_request();
  EXPECT_FALSE(cluster.pool->enqueue("nope", std::move(forward)));
}

TEST(BackendPool, BreakerTripsAfterConsecutiveFailures) {
  BackendPoolOptions options;
  options.failure_threshold = 3;
  ClusterSim cluster({"b1"}, 1, options);
  cluster.sim("b1").dead = true;

  for (int i = 0; i < 3; ++i) {
    auto failed = std::make_shared<std::promise<void>>();
    auto future = failed->get_future();
    BackendPool::Forward forward;
    forward.request = stats_request();
    forward.on_reply = [](std::string) { FAIL() << "unexpected reply"; };
    forward.on_failure = [failed] { failed->set_value(); };
    ASSERT_TRUE(cluster.pool->enqueue("b1", std::move(forward)))
        << "attempt " << i << " should be admitted before the breaker trips";
    future.get();
    // Wait until the worker has recorded the failure before the next try.
    ASSERT_TRUE(wait_until([&] {
      return cluster.metrics.backend_snapshot("b1").transport_failures >=
             static_cast<std::uint64_t>(i + 1);
    }));
  }

  ASSERT_TRUE(wait_until(
      [&] { return cluster.pool->health("b1") == BackendHealth::kOpen; }));
  EXPECT_EQ(cluster.metrics.backend_snapshot("b1").marked_down, 1u);
  // Open breaker refuses without consuming callbacks.
  BackendPool::Forward forward;
  forward.request = stats_request();
  EXPECT_FALSE(cluster.pool->enqueue("b1", std::move(forward)));
}

TEST(BackendPool, ProbeRecoveryClosesBreakerAndFiresCallback) {
  serve::ManualClock clock;
  BackendPoolOptions options;
  options.failure_threshold = 1;
  options.probe_interval_ms = 100.0;
  options.clock_ms = clock.fn();

  serve::RouterMetrics metrics;
  metrics.add_backend("b1");
  BackendSim sim;
  std::mutex recovered_mu;
  std::vector<std::string> recovered;
  BackendPool pool(
      {"b1"}, options, metrics, [&sim](const std::string&) {
        return std::make_unique<SwitchableTransport>(sim.server, sim.dead);
      });
  pool.set_recovery_callback([&](const std::string& backend) {
    std::lock_guard<std::mutex> lock(recovered_mu);
    recovered.push_back(backend);
  });
  pool.start();

  // Trip the breaker with one failure (threshold 1).
  sim.dead = true;
  auto failed = std::make_shared<std::promise<void>>();
  BackendPool::Forward forward;
  forward.request = stats_request();
  forward.on_failure = [failed] { failed->set_value(); };
  ASSERT_TRUE(pool.enqueue("b1", std::move(forward)));
  failed->get_future().get();
  ASSERT_TRUE(
      wait_until([&] { return pool.health("b1") == BackendHealth::kOpen; }));

  // Dead probe keeps it open.
  clock.advance(150.0);
  pool.tick();
  ASSERT_TRUE(wait_until(
      [&] { return metrics.backend_snapshot("b1").probe_failures >= 1; }));
  EXPECT_EQ(pool.health("b1"), BackendHealth::kOpen);

  // Revive; the next due probe closes the breaker and fires the recovery
  // callback.
  sim.dead = false;
  clock.advance(150.0);
  pool.tick();
  ASSERT_TRUE(wait_until(
      [&] { return pool.health("b1") == BackendHealth::kClosed; }));
  ASSERT_TRUE(wait_until([&] {
    std::lock_guard<std::mutex> lock(recovered_mu);
    return recovered.size() == 1;
  }));
  EXPECT_EQ(recovered[0], "b1");
  EXPECT_EQ(metrics.backend_snapshot("b1").recovered, 1u);
  pool.stop();
}

TEST(BackendPool, StopFailsQueuedWork) {
  ClusterSim cluster({"b1"});
  // Kill the backend so a forward fails over to the queue-drain path or the
  // failure path — either way the callback must fire exactly once.
  cluster.sim("b1").dead = true;
  auto failed = std::make_shared<std::promise<void>>();
  BackendPool::Forward forward;
  forward.request = stats_request();
  forward.on_reply = [](std::string) { FAIL() << "unexpected reply"; };
  forward.on_failure = [failed] { failed->set_value(); };
  ASSERT_TRUE(cluster.pool->enqueue("b1", std::move(forward)));
  failed->get_future().get();
  cluster.pool->stop();
  // Enqueue after stop is refused.
  BackendPool::Forward late;
  late.request = stats_request();
  EXPECT_FALSE(cluster.pool->enqueue("b1", std::move(late)));
}

TEST(BackendPoolAddress, ParsesHostPort) {
  const auto [host, port] = parse_backend_address("127.0.0.1:8080");
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
}

TEST(BackendPoolAddress, RejectsMalformedAddresses) {
  EXPECT_THROW(parse_backend_address("nohost"), serve::ServeError);
  EXPECT_THROW(parse_backend_address(":8080"), serve::ServeError);
  EXPECT_THROW(parse_backend_address("host:"), serve::ServeError);
  EXPECT_THROW(parse_backend_address("host:0"), serve::ServeError);
  EXPECT_THROW(parse_backend_address("host:99999"), serve::ServeError);
  EXPECT_THROW(parse_backend_address("host:12x"), serve::ServeError);
}

TEST(BackendPoolHealth, NamesAreStable) {
  EXPECT_STREQ(backend_health_name(BackendHealth::kClosed), "closed");
  EXPECT_STREQ(backend_health_name(BackendHealth::kProbing), "probing");
  EXPECT_STREQ(backend_health_name(BackendHealth::kOpen), "open");
}

}  // namespace
}  // namespace abp::cluster
