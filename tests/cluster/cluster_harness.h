/// \file cluster_harness.h
/// \brief Shared in-process cluster fixture for the cluster test suites.
///
/// Builds N named backends (each a real `LocalizationService` + manual-mode
/// `Server`) and wires a `BackendPool` transport factory that speaks to
/// them through `LoopbackTransport` — the full wire codec, zero sockets,
/// fully deterministic. Each backend has a kill switch: flipping it makes
/// every transport operation throw `ServeError`, which is what a dead TCP
/// peer looks like to the pool.
#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/membership.h"
#include "common/assert.h"
#include "cluster/replicator.h"
#include "cluster/ring.h"
#include "cluster/router.h"
#include "field/beacon_field.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/transport.h"

namespace abp::cluster {

inline BeaconField harness_field() {
  BeaconField field(AABB({0, 0}, {60, 60}));
  field.add({10, 10});
  field.add({30, 10});
  field.add({10, 30});
  field.add({45, 45});
  return field;
}

inline serve::ServiceConfig harness_service_config() {
  serve::ServiceConfig config;
  config.noise = 0.0;
  config.lattice_step = 2.0;
  return config;
}

/// Delegates to a loopback transport until the kill switch flips, then
/// throws like a reset TCP connection.
class SwitchableTransport final : public serve::ClientTransport {
 public:
  SwitchableTransport(serve::Server& server, std::atomic<bool>& dead)
      : inner_(server), dead_(&dead) {}

  serve::Response roundtrip(const serve::Request& request) override {
    check_alive();
    return inner_.roundtrip(request);
  }
  void send_async(const serve::Request& request,
                  std::function<void(std::string)> on_reply) override {
    check_alive();
    inner_.send_async(request, std::move(on_reply));
  }
  void flush() override {
    check_alive();
    inner_.flush();
  }
  std::string name() const override { return "switchable"; }

 private:
  void check_alive() const {
    if (dead_->load()) throw serve::ServeError("backend killed");
  }

  serve::LoopbackTransport inner_;
  std::atomic<bool>* dead_;
};

/// One in-process backend: service + manual server + kill switch.
struct BackendSim {
  explicit BackendSim(serve::ServiceConfig config = harness_service_config())
      : service(config), server(service) {}

  serve::LocalizationService service;
  serve::Server server;
  std::atomic<bool> dead{false};
};

/// N backends plus membership/pool/replicator/router wired like `abp route`.
struct ClusterSim {
  explicit ClusterSim(std::vector<std::string> names,
                      std::size_t replication = 1,
                      BackendPoolOptions pool_options = {},
                      RouterOptions router_options = {},
                      std::size_t log_retain = MutationLog::kDefaultRetain)
      : backend_names(names), membership(names) {
    for (const std::string& name : names) {
      sims.emplace(name, std::make_unique<BackendSim>());
    }
    pool = std::make_unique<BackendPool>(
        names, std::move(pool_options), metrics,
        [this](const std::string& backend) {
          BackendSim& sim = *sims.at(backend);
          return std::make_unique<SwitchableTransport>(sim.server, sim.dead);
        });
    replicator = std::make_unique<Replicator>(*pool, membership, replication,
                                              metrics, log_retain);
    pool->set_recovery_callback([this](const std::string& backend) {
      replicator->sync_backend(backend);
    });
    router = std::make_unique<Router>(membership, *pool, *replicator,
                                      metrics, std::move(router_options));
    pool->start();
  }

  ~ClusterSim() { pool->stop(); }

  /// Route one request through the router, blocking for the reply payload.
  std::string call(const serve::Request& request) {
    auto done = std::make_shared<std::promise<std::string>>();
    auto future = done->get_future();
    router->submit(serve::format_request(request),
                   [done](std::string payload) {
                     done->set_value(std::move(payload));
                   });
    return future.get();
  }

  /// Register a backend sim so the pool's transport factory can reach it.
  /// Must run before `admin("add", name)` — the joining backend's first
  /// snapshot install creates the transport.
  BackendSim& add_sim(const std::string& name) {
    auto [it, inserted] = sims.emplace(name, std::make_unique<BackendSim>());
    (void)inserted;
    return *it->second;
  }

  /// Drive the membership admin plane over the wire (the same payload the
  /// `abp route-admin` CLI sends), returning the parsed response.
  serve::Response admin(const std::string& verb,
                        const std::string& backend = "") {
    serve::Request request;
    request.endpoint = serve::Endpoint::kAdmin;
    request.algorithm = verb;
    if (!backend.empty()) request.text = backend + "\n";
    const auto response = serve::parse_response(call(request));
    ABP_CHECK(response.has_value(), "unparseable admin response");
    return *response;
  }

  BackendSim& sim(const std::string& name) { return *sims.at(name); }

  std::vector<std::string> backend_names;
  MembershipTable membership;
  serve::RouterMetrics metrics;
  std::map<std::string, std::unique_ptr<BackendSim>> sims;
  std::unique_ptr<BackendPool> pool;
  std::unique_ptr<Replicator> replicator;
  std::unique_ptr<Router> router;
};

/// Poll `pred` until true or ~2 s pass (worker threads are asynchronous).
template <typename Pred>
bool wait_until(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

}  // namespace abp::cluster
