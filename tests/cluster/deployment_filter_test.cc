/// `DeploymentFilter`: one-sided membership over deployment names. The
/// false-positive tests lean on the filter being fully deterministic
/// (`stable_hash64` double hashing) — a name that false-positives today
/// false-positives on every platform, which is what lets the router suite
/// pin the FP-falls-through path.
#include "cluster/deployment_filter.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace abp::cluster {
namespace {

std::vector<std::string> make_names(int n) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) names.push_back("field-" + std::to_string(i));
  return names;
}

TEST(DeploymentFilter, EmptyFilterContainsNothing) {
  const DeploymentFilter filter;
  EXPECT_FALSE(filter.may_contain("anything"));
  EXPECT_EQ(filter.bit_count(), 0u);

  // Rebuilding from an empty set keeps the nothing-deployed answer.
  DeploymentFilter rebuilt;
  rebuilt.rebuild({});
  EXPECT_FALSE(rebuilt.may_contain("anything"));
}

TEST(DeploymentFilter, NoFalseNegativesEver) {
  // The one-sided contract: every inserted name answers true. Exercise a
  // range of set sizes so word-boundary bit positions are covered.
  for (const int n : {1, 7, 64, 200}) {
    DeploymentFilter filter;
    const auto names = make_names(n);
    filter.rebuild(names);
    EXPECT_EQ(filter.name_count(), static_cast<std::size_t>(n));
    for (const std::string& name : names) {
      EXPECT_TRUE(filter.may_contain(name)) << name << " of " << n;
    }
  }
}

TEST(DeploymentFilter, RebuildReplacesTheOldSet) {
  DeploymentFilter filter;
  filter.rebuild({"alpha", "beta"});
  EXPECT_TRUE(filter.may_contain("alpha"));
  filter.rebuild({"gamma"});
  EXPECT_TRUE(filter.may_contain("gamma"));
  EXPECT_FALSE(filter.may_contain("alpha")) << "stale bits must not survive";
}

TEST(DeploymentFilter, AbsentNamesAreMostlyRejected) {
  // Default sizing targets ~1% false positives; allow generous slack so the
  // assertion pins the order of magnitude, not the exact constant.
  DeploymentFilter filter;
  filter.rebuild(make_names(100));
  int false_positives = 0;
  constexpr int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i) {
    if (filter.may_contain("absent-" + std::to_string(i))) ++false_positives;
  }
  EXPECT_LT(false_positives, kProbes / 20) << "FP rate far above design point";
}

TEST(DeploymentFilter, FalsePositivesAreDeterministic) {
  // Brute-force a name the filter cannot rule out. With 40 names at the
  // default 10 bits/name the per-probe FP rate is a few percent, so a few
  // thousand candidates always surface one; determinism means the same
  // candidate false-positives on a freshly built identical filter.
  const auto names = make_names(40);
  DeploymentFilter filter;
  filter.rebuild(names);
  std::string fp;
  for (int i = 0; i < 200000 && fp.empty(); ++i) {
    const std::string candidate = "ghost-" + std::to_string(i);
    if (filter.may_contain(candidate)) fp = candidate;
  }
  ASSERT_FALSE(fp.empty()) << "no false positive in 200k candidates";

  DeploymentFilter twin;
  twin.rebuild(names);
  EXPECT_TRUE(twin.may_contain(fp));
}

TEST(DeploymentFilter, BitCountScalesWithNamesAndFloorsAtOneWord) {
  DeploymentFilter small;
  small.rebuild({"only"});
  EXPECT_EQ(small.bit_count(), 64u) << "one-word floor";
  DeploymentFilter big;
  big.rebuild(make_names(100));
  EXPECT_EQ(big.bit_count(), 1000u);
}

}  // namespace
}  // namespace abp::cluster
