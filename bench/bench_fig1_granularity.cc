/// bench_fig1_granularity — Figure 1: "beacon density vs granularity of
/// localization regions". A 2×2 uniform beacon grid yields fewer and
/// larger localization regions; a 3×3 grid yields more and smaller ones.
/// We quantify the schematic with the locus decomposition: region count,
/// mean region area, and the resulting mean localization error.
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "eval/config.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "loc/locus.h"
#include "radio/propagation.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const double range = flags.get_double("range", 35.0);
  flags.check_unused();

  std::cout << "=== Figure 1: beacon grid density vs localization "
               "granularity ===\n"
            << "uniform n x n beacon grids on 100x100 m, R=" << range
            << " m\n\n";

  const abp::AABB bounds = abp::AABB::square(100.0);
  const abp::Lattice2D lattice(bounds, 1.0);
  const abp::IdealDiskModel model(range);

  abp::TextTable table({"beacon grid", "beacons", "regions", "mean region area (m^2)",
                        "largest region (m^2)", "mean LE (m)"});
  for (std::size_t n = 2; n <= 6; ++n) {
    abp::BeaconField field(bounds);
    abp::place_grid(field, n, n);
    const abp::LocusAnalysis loci = analyze_loci(field, model, lattice);
    abp::ErrorMap map(lattice);
    map.compute(field, model);
    table.add_row({std::to_string(n) + "x" + std::to_string(n),
                   std::to_string(n * n), std::to_string(loci.region_count()),
                   abp::TextTable::fmt(loci.mean_area(), 1),
                   abp::TextTable::fmt(loci.largest()->area, 1),
                   abp::TextTable::fmt(map.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nPaper claim (Fig 1): increasing beacon density yields more "
               "and smaller localization regions,\nhence finer granularity "
               "and lower localization error. Expect 'regions' to rise and\n"
               "'mean region area' / 'mean LE' to fall down the table.\n";
  return 0;
}
