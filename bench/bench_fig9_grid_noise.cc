/// bench_fig9_grid_noise — Figure 9: improvement in mean and median error
/// with the Grid algorithm, across densities and noise levels.
///
/// Paper: Grid remains clearly the best algorithm under noise, and noise
/// makes moderate densities (0.005–0.01 /m²) more improvable with Grid;
/// median improvements stay relatively unchanged.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  auto opt = abp::bench::parse(argc, argv, /*default_trials=*/50);
  abp::bench::banner("Figure 9: Grid algorithm vs density and noise", opt);

  const abp::SweepOutcome out = run_fig_alg_noise("grid", opt.fig);
  print_algorithm_noise_tables(std::cout, out, 0);
  abp::bench::emit_outputs(opt, out, "Figure 9: Grid vs density and noise");
  return 0;
}
