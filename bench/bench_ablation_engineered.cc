/// bench_ablation_engineered — §1's deployment hierarchy quantified:
/// "uniform placement is good, but insufficient". For equal total beacon
/// counts, compare localization quality of
///  * random deployment (what an airdrop achieves),
///  * engineered deployment (greedy k-median, the §5 facility-location
///    approach an operator with full terrain control computes offline),
///  * random deployment of N−j beacons repaired with j adaptive Grid
///    placements (the paper's proposal: adapt instead of re-engineer).
/// The interesting question: how much of the engineered advantage does
/// adaptive repair recover without ever re-deploying the existing field?
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "eval/config.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "placement/facility_location.h"
#include "placement/grid_placement.h"
#include "radio/noise_model.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 12);
  const std::uint64_t seed = flags.get_u64("seed", 20010421);
  flags.check_unused();

  const abp::PaperParams params;
  std::cout << "=== Ablation: random vs engineered (k-median) vs "
               "random+adaptive deployments (Ideal, " << trials
            << " fields/cell) ===\n\n";

  const abp::GridPlacement grid;
  abp::TextTable table({"total beacons", "random (m)",
                        "random + 8 adaptive (m)", "engineered (m)",
                        "adaptive recovers (%)"});
  for (const std::size_t n : {24u, 40u, 64u}) {
    // Engineered deployment is deterministic: compute once per count.
    const auto engineered_positions = abp::greedy_kmedian_deployment(
        params.lattice(), n,
        {.site_stride = 4, .demand_stride = 2, .distance_cap = 30.0});
    abp::BeaconField engineered(params.bounds(), 15.0);
    for (const abp::Vec2& p : engineered_positions) engineered.add(p);
    const abp::PerBeaconNoiseModel ideal(params.range, 0.0, 0);
    abp::ErrorMap engineered_map(params.lattice());
    engineered_map.compute(engineered, ideal);
    const double engineered_le = engineered_map.mean();

    abp::RunningStats random_le, repaired_le;
    const std::size_t adaptive = 8;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t trial_seed = abp::derive_seed(seed, n, t);
      const abp::PerBeaconNoiseModel model(params.range, 0.0,
                                           abp::derive_seed(trial_seed, 2));
      // Random deployment of the full budget.
      {
        abp::BeaconField field(params.bounds(), model.max_range());
        abp::Rng rng(abp::derive_seed(trial_seed, 1));
        scatter_uniform(field, n, rng);
        abp::ErrorMap map(params.lattice());
        map.compute(field, model);
        random_le.add(map.mean());
      }
      // Random N−8, repaired with 8 sequential Grid placements.
      {
        abp::BeaconField field(params.bounds(), model.max_range());
        abp::Rng rng(abp::derive_seed(trial_seed, 1));
        scatter_uniform(field, n - adaptive, rng);
        abp::ErrorMap map(params.lattice());
        map.compute(field, model);
        abp::Rng alg_rng(abp::derive_seed(trial_seed, 3));
        for (std::size_t k = 0; k < adaptive; ++k) {
          const abp::SurveyData survey = abp::SurveyData::from_error_map(map);
          abp::PlacementContext ctx = abp::PlacementContext::basic(
              survey, params.bounds(), params.range);
          ctx.field = &field;
          ctx.model = &model;
          ctx.truth = &map;
          const abp::Vec2 pos =
              params.bounds().clamp(grid.propose(ctx, alg_rng));
          const abp::BeaconId id = field.add(pos);
          map.apply_addition(field, model, *field.get(id));
        }
        repaired_le.add(map.mean());
      }
    }
    const double recovered =
        100.0 * (random_le.mean() - repaired_le.mean()) /
        std::max(1e-9, random_le.mean() - engineered_le);
    table.add_row({std::to_string(n),
                   abp::TextTable::fmt(random_le.mean(), 2),
                   abp::TextTable::fmt(repaired_le.mean(), 2),
                   abp::TextTable::fmt(engineered_le, 2),
                   abp::TextTable::fmt(recovered, 0)});
  }
  table.print(std::cout);
  std::cout
      << "\nObservations: engineered deployment is worth ~2-3x in mean LE "
         "at equal counts ('uniform placement\nis good'). Adaptive repair "
         "recovers roughly half of that gap at low density — without "
         "touching the\nexisting field — but less near saturation, where "
         "the engineered advantage is geometric regularity\nthat single "
         "additions cannot retrofit ('uniform placement is good, but "
         "insufficient' works both ways).\n";
  return 0;
}
