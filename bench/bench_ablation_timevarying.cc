/// bench_ablation_timevarying — §6 future work: "a more sophisticated …
/// propagation model (incorporating time varying propagation loss)".
///
/// Each beacon's range drifts sinusoidally (amplitude a, period 60 s,
/// independent hash-derived phases). Two questions:
///  1. how much does connectivity churn degrade instantaneous localization?
///  2. how stale does a survey get: place a beacon with Grid/Max using a
///     survey taken at t=0, and measure the realized improvement at later
///     times.
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "eval/config.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "radio/noise_model.h"
#include "radio/time_varying.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 12);
  const std::size_t beacons =
      static_cast<std::size_t>(flags.get_int("beacons", 30));
  const std::uint64_t seed = flags.get_u64("seed", 20010421);
  flags.check_unused();

  const abp::PaperParams params;
  const double period = 60.0;

  std::cout << "=== Ablation: time-varying propagation (period " << period
            << " s, " << beacons << " beacons, " << trials
            << " fields/cell) ===\n\n";

  std::cout << "1. Instantaneous mean LE vs drift amplitude:\n";
  abp::TextTable drift_table({"amplitude", "mean LE (m)",
                              "connectivity churn (%)"});
  for (const double amplitude : {0.0, 0.1, 0.2, 0.4}) {
    abp::RunningStats le, churn;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t trial_seed =
          abp::derive_seed(seed, static_cast<std::uint64_t>(amplitude * 100),
                           static_cast<std::uint64_t>(t));
      const abp::PerBeaconNoiseModel base(params.range, 0.0,
                                          abp::derive_seed(trial_seed, 2));
      abp::TimeVaryingModel model(base, amplitude, period,
                                  abp::derive_seed(trial_seed, 5));
      abp::BeaconField field(params.bounds(), model.max_range());
      abp::Rng rng(abp::derive_seed(trial_seed, 1));
      scatter_uniform(field, beacons, rng);

      abp::ErrorMap map(params.lattice());
      model.set_time(0.0);
      map.compute(field, model);
      le.add(map.mean());

      // Churn: fraction of lattice points whose connectivity count changed
      // between t=0 and t=period/4.
      std::vector<std::size_t> counts0(params.lattice().size());
      for (std::size_t i = 0; i < counts0.size(); ++i) {
        counts0[i] = map.connected(i);
      }
      model.set_time(period / 4.0);
      map.compute(field, model);
      std::size_t changed = 0;
      for (std::size_t i = 0; i < counts0.size(); ++i) {
        if (map.connected(i) != counts0[i]) ++changed;
      }
      churn.add(100.0 * static_cast<double>(changed) /
                static_cast<double>(counts0.size()));
    }
    drift_table.add_row({abp::TextTable::fmt(amplitude, 1),
                         abp::TextTable::fmt(le.mean(), 2),
                         abp::TextTable::fmt(churn.mean(), 1)});
  }
  drift_table.print(std::cout);

  std::cout << "\n2. Survey staleness (amplitude 0.2): gain realized at "
               "t = Δ from a placement decided with the t=0 survey:\n";
  abp::TextTable stale_table({"Δ (s)", "grid gain (m)", "max gain (m)"});
  const abp::GridPlacement grid;
  const abp::MaxPlacement max;
  for (const double delta : {0.0, 15.0, 30.0}) {
    abp::RunningStats grid_gain, max_gain;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t trial_seed =
          abp::derive_seed(seed, 777, static_cast<std::uint64_t>(t));
      const abp::PerBeaconNoiseModel base(params.range, 0.0,
                                          abp::derive_seed(trial_seed, 2));
      abp::TimeVaryingModel model(base, 0.2, period,
                                  abp::derive_seed(trial_seed, 5));
      abp::BeaconField field(params.bounds(), model.max_range());
      abp::Rng rng(abp::derive_seed(trial_seed, 1));
      scatter_uniform(field, beacons, rng);

      // Survey at t=0; the placement decision is made from it.
      model.set_time(0.0);
      abp::ErrorMap map0(params.lattice());
      map0.compute(field, model);
      const abp::SurveyData survey = abp::SurveyData::from_error_map(map0);
      auto ctx =
          abp::PlacementContext::basic(survey, params.bounds(), params.range);
      abp::Rng alg_rng(abp::derive_seed(trial_seed, 4));
      const abp::Vec2 grid_pos =
          params.bounds().clamp(grid.propose(ctx, alg_rng));
      const abp::Vec2 max_pos =
          params.bounds().clamp(max.propose(ctx, alg_rng));

      // Evaluate the improvement in the world as it is at t = Δ.
      model.set_time(delta);
      abp::ErrorMap map_now(params.lattice());
      map_now.compute(field, model);
      grid_gain.add(map_now.mean() -
                    map_now.mean_if_added(field, model, grid_pos));
      max_gain.add(map_now.mean() -
                   map_now.mean_if_added(field, model, max_pos));
    }
    stale_table.add_row({abp::TextTable::fmt(delta, 0),
                         abp::TextTable::fmt(grid_gain.mean(), 3) + " ±" +
                             abp::TextTable::fmt(grid_gain.ci95(), 3),
                         abp::TextTable::fmt(max_gain.mean(), 3) + " ±" +
                             abp::TextTable::fmt(max_gain.ci95(), 3)});
  }
  stale_table.print(std::cout);
  std::cout << "\nExpect churn and instantaneous error to grow with "
               "amplitude, and stale surveys to cost Max more than Grid "
               "(area aggregation outlives point measurements).\n";
  return 0;
}
