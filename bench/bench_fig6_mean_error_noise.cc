/// bench_fig6_mean_error_noise — Figure 6: mean localization error vs
/// beacon density for Noise ∈ {0, 0.1, 0.3, 0.5}, with per-noise
/// saturation analysis.
///
/// Paper: mean error and saturation density both rise steadily with noise
/// (quoted: up to +33% error, +50% saturation density at Noise=0.5). Under
/// the literal §4.2.1 model the symmetric per-(point,beacon) draw largely
/// cancels in the centroid, so the measured increase is smaller — the
/// direction and ordering of the curves is preserved (see EXPERIMENTS.md).
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  auto opt = abp::bench::parse(argc, argv, /*default_trials=*/60);
  abp::bench::banner(
      "Figure 6: mean localization error vs density and noise", opt);

  const abp::SweepOutcome out = run_fig6(opt.fig);
  print_mean_error_table(std::cout, out);
  std::cout << "\n";
  for (std::size_t ni = 0; ni < out.config.noise_levels.size(); ++ni) {
    print_saturation(std::cout, out, ni);
  }
  abp::bench::emit_outputs(opt, out, "Figure 6: mean LE vs density and noise");
  return 0;
}
