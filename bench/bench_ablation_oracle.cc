/// bench_ablation_oracle — how much headroom do the paper's algorithms
/// leave? The greedy oracle evaluates the true post-placement mean error
/// of every (stride-subsampled) lattice point and places at the argmin —
/// an upper bound on any single-beacon placement policy. §4's
/// "solution space density" argument predicts the gap between Grid and the
/// oracle is small at low density (many near-optimal placements exist).
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/oracle_placement.h"
#include "placement/refined_grid_placement.h"
#include "placement/random_placement.h"

int main(int argc, char** argv) {
  auto opt = abp::bench::parse(argc, argv, /*default_trials=*/15);
  abp::bench::banner("Ablation: Random/Max/Grid vs the greedy oracle "
                     "(Ideal)", opt);

  abp::SweepConfig config = make_sweep_config(opt.fig, {0.0});
  config.beacon_counts = {20, 30, 40, 60, 100};

  static const abp::RandomPlacement random;
  static const abp::MaxPlacement max;
  static const abp::GridPlacement grid;
  static const abp::RefinedGridPlacement refined;
  static const abp::OraclePlacement oracle(/*stride=*/2);
  const abp::PlacementAlgorithm* algs[] = {&random, &max, &grid, &refined,
                                           &oracle};

  const abp::SweepOutcome out = run_sweep(config, {algs, 5}, opt.fig.progress);
  print_improvement_tables(std::cout, out, 0);

  std::cout << "Fraction of the oracle's gain captured:\n";
  abp::TextTable table({"beacons", "grid/oracle", "grid-refined/oracle",
                        "max/oracle"});
  for (const auto& cell : out.cells[0]) {
    const double o = cell.improvement_mean[4].mean;
    table.add_row({std::to_string(cell.beacons),
                   abp::TextTable::fmt(o > 0 ? cell.improvement_mean[2].mean / o : 0.0, 2),
                   abp::TextTable::fmt(o > 0 ? cell.improvement_mean[3].mean / o : 0.0, 2),
                   abp::TextTable::fmt(o > 0 ? cell.improvement_mean[1].mean / o : 0.0, 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpect grid/oracle well above max/oracle at low density "
               "(the dense solution space lets Grid capture most of the "
               "attainable gain), and grid-refined to close most of the "
               "remaining gap at ~NG x less cost than the oracle.\n";
  abp::bench::emit_outputs(opt, out, "Ablation: oracle gap");
  return 0;
}
