/// bench_ablation_batch — §6 future work: "evaluate the algorithms with
/// respect to the gains obtained when several beacons are added at once
/// (instead of just one beacon)".
///
/// Compares, for the Grid algorithm at low density, placing k beacons
///  * sequentially (re-survey between placements; k robot tours), vs
///  * one-shot (single survey, suppress each pick's neighbourhood).
/// Reported: total improvement in mean LE after k placements, averaged
/// over random fields, with 95% CIs.
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "eval/config.h"
#include "field/generators.h"
#include "placement/batch.h"
#include "placement/grid_placement.h"
#include "radio/noise_model.h"

namespace {

struct Cell {
  abp::RunningStats sequential, oneshot;
};

}  // namespace

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 25);
  const std::uint64_t seed = flags.get_u64("seed", 20010421);
  const double noise = flags.get_double("noise", 0.0);
  flags.check_unused();

  const abp::PaperParams params;
  const std::size_t counts[] = {20, 40};
  const std::size_t ks[] = {1, 2, 4, 8};

  std::cout << "=== Ablation: multi-beacon batch placement (Grid, Noise="
            << noise << ", " << trials << " fields/cell) ===\n\n";

  const abp::GridPlacement grid;
  abp::TextTable table({"beacons", "k", "sequential gain (m)",
                        "one-shot gain (m)", "seq advantage"});
  for (const std::size_t n : counts) {
    for (const std::size_t k : ks) {
      Cell cell;
      for (int t = 0; t < trials; ++t) {
        const std::uint64_t trial_seed =
            abp::derive_seed(seed, n, k, static_cast<std::uint64_t>(t));
        const abp::PerBeaconNoiseModel model(params.range, noise,
                                             abp::derive_seed(trial_seed, 2));
        abp::BeaconField proto(params.bounds(), model.max_range());
        abp::Rng field_rng(abp::derive_seed(trial_seed, 1));
        scatter_uniform(proto, n, field_rng);
        abp::ErrorMap proto_map(params.lattice());
        proto_map.compute(proto, model);

        for (const auto mode :
             {abp::BatchMode::kSequential, abp::BatchMode::kOneShot}) {
          abp::BeaconField field = proto;   // identical starting field
          abp::ErrorMap map = proto_map;
          abp::Rng rng(abp::derive_seed(trial_seed, 3));
          const abp::BatchResult r =
              place_batch(field, model, map, grid, k, mode, rng);
          const double gain = r.mean_before - r.mean_after;
          (mode == abp::BatchMode::kSequential ? cell.sequential
                                               : cell.oneshot)
              .add(gain);
        }
      }
      table.add_row(
          {std::to_string(n), std::to_string(k),
           abp::TextTable::fmt(cell.sequential.mean(), 3) + " ±" +
               abp::TextTable::fmt(cell.sequential.ci95(), 3),
           abp::TextTable::fmt(cell.oneshot.mean(), 3) + " ±" +
               abp::TextTable::fmt(cell.oneshot.ci95(), 3),
           abp::TextTable::fmt(
               cell.sequential.mean() - cell.oneshot.mean(), 3)});
    }
  }
  table.print(std::cout);
  std::cout
      << "\nAt k=1 the modes coincide by construction. Sequential "
         "re-measurement helps mildly at moderate k,\nbut at larger k "
         "one-shot can WIN: its suppression forces spatial diversity, "
         "while sequential Grid may\nrevisit the same saturated grid "
         "center (the algorithm can only propose the NG fixed centers). "
         "Per-beacon\nreturns diminish in k for both modes.\n";
  return 0;
}
