/// bench_ablation_explorer — online exploration vs fixed tours (§3.1's
/// baseline assumption relaxed): with the SAME measurement budget, how
/// much placement quality does each survey strategy support, and at what
/// travel cost?
///
/// Strategies compared at each budget: uniform boustrophedon subsampling
/// (coarser stride), and the two-phase adaptive explorer (coarse sketch +
/// hot-spot refinement). Placement quality is the true improvement in mean
/// LE achieved by Grid (and Max) proposing from the measured survey.
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "eval/config.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "radio/noise_model.h"
#include "robot/adaptive_explorer.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 20);
  const std::size_t beacons =
      static_cast<std::size_t>(flags.get_int("beacons", 30));
  const std::uint64_t seed = flags.get_u64("seed", 20010421);
  flags.check_unused();

  const abp::PaperParams params;
  std::cout << "=== Ablation: adaptive exploration vs uniform tours ("
            << beacons << " beacons, Noise=0.3, " << trials
            << " fields/cell) ===\n"
            << "full survey = " << params.pt() << " measurements\n\n";

  struct Strategy {
    const char* label;
    bool adaptive;
    std::size_t stride;  // uniform stride, or coarse stride when adaptive
    std::size_t budget;  // measurements (adaptive only)
  };
  const Strategy strategies[] = {
      {"uniform stride 1 (complete)", false, 1, 0},
      {"uniform stride 3 (~1156 pts)", false, 3, 0},
      {"adaptive, budget 1156", true, 8, 1156},
      {"uniform stride 5 (~441 pts)", false, 5, 0},
      {"adaptive, budget 441", true, 10, 441},
      {"uniform stride 8 (~169 pts)", false, 8, 0},
      {"adaptive, budget 169", true, 16, 169},
  };

  const abp::GridPlacement grid;
  const abp::GridPlacement grid_norm(400, 2.0, /*normalized=*/true);
  const abp::MaxPlacement max;

  abp::TextTable table({"survey strategy", "measurements", "travel (km)",
                        "grid gain (m)", "grid-norm gain (m)",
                        "max gain (m)"});
  for (const Strategy& s : strategies) {
    abp::RunningStats points, travel, grid_gain, norm_gain, max_gain;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t trial_seed =
          abp::derive_seed(seed, s.adaptive, s.stride, s.budget,
                           static_cast<std::uint64_t>(t));
      const abp::PerBeaconNoiseModel model(params.range, 0.3,
                                           abp::derive_seed(trial_seed, 2));
      abp::BeaconField field(params.bounds(), model.max_range());
      abp::Rng field_rng(abp::derive_seed(trial_seed, 1));
      scatter_uniform(field, beacons, field_rng);
      abp::ErrorMap truth(params.lattice());
      truth.compute(field, model);

      const abp::Surveyor surveyor(field, model);
      abp::Rng rng(abp::derive_seed(trial_seed, 3));
      abp::SurveyData survey{params.lattice()};
      if (s.adaptive) {
        const auto result = explore_adaptive(
            surveyor, params.lattice(),
            {.coarse_stride = s.stride, .max_measurements = s.budget,
             .refine_radius = params.range},
            rng);
        survey = result.survey;
        points.add(static_cast<double>(result.tour.size()));
        travel.add(result.travel_distance / 1000.0);
      } else {
        const auto tour = boustrophedon_tour(params.lattice(), s.stride);
        survey = surveyor.survey(params.lattice(), tour, rng);
        points.add(static_cast<double>(tour.size()));
        travel.add(tour_length(params.lattice(), tour) / 1000.0);
      }

      auto ctx =
          abp::PlacementContext::basic(survey, params.bounds(), params.range);
      abp::Rng alg_rng(abp::derive_seed(trial_seed, 4));
      const double before = truth.mean();
      grid_gain.add(before - truth.mean_if_added(
                                 field, model,
                                 params.bounds().clamp(
                                     grid.propose(ctx, alg_rng))));
      norm_gain.add(before - truth.mean_if_added(
                                 field, model,
                                 params.bounds().clamp(
                                     grid_norm.propose(ctx, alg_rng))));
      max_gain.add(before - truth.mean_if_added(
                                field, model,
                                params.bounds().clamp(
                                    max.propose(ctx, alg_rng))));
    }
    table.add_row({s.label, abp::TextTable::fmt(points.mean(), 0),
                   abp::TextTable::fmt(travel.mean(), 2),
                   abp::TextTable::fmt(grid_gain.mean(), 3) + " ±" +
                       abp::TextTable::fmt(grid_gain.ci95(), 3),
                   abp::TextTable::fmt(norm_gain.mean(), 3) + " ±" +
                       abp::TextTable::fmt(norm_gain.ci95(), 3),
                   abp::TextTable::fmt(max_gain.mean(), 3) + " ±" +
                       abp::TextTable::fmt(max_gain.ci95(), 3)});
  }
  table.print(std::cout);
  std::cout
      << "\nKey effect: the paper's CUMULATIVE grid score assumes uniform "
         "measurement density, so the\nadaptive survey's concentrated "
         "sampling biases it ('grid gain' drops under 'adaptive' rows).\n"
         "The density-normalized variant ('grid-norm') and Max are robust "
         "to non-uniform sampling.\nUniform subsampling needs no such "
         "correction — for Grid, a coarse uniform sketch is already\n"
         "near-optimal; adaptive exploration pays off when the placement "
         "rule needs point resolution (Max).\n";
  return 0;
}
