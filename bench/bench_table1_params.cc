/// bench_table1_params — Table 1 of the paper: simulation parameters,
/// echoed together with every derived quantity the evaluation relies on,
/// each validated against the paper's formulas.
#include <iostream>

#include "common/assert.h"
#include "common/table.h"
#include "eval/config.h"
#include "placement/grid_placement.h"
#include "loc/survey_data.h"

int main() {
  using abp::TextTable;
  const abp::PaperParams p;

  std::cout << "=== Table 1: Simulation Parameters ===\n\n";
  TextTable t1({"Parameter", "Value"});
  t1.add_row({"Side", "100m"});
  t1.add_row({"R", "15m"});
  t1.add_row({"step", "1m"});
  t1.add_row({"NG", "400"});
  t1.print(std::cout);

  std::cout << "\nDerived quantities (validated):\n";
  TextTable t2({"Quantity", "Formula", "Value"});

  const std::size_t pt = p.pt();
  ABP_CHECK(pt == 10201, "PT must be (Side/step + 1)^2 = 10201");
  t2.add_row({"PT (measurement points)", "(Side/step + 1)^2",
              std::to_string(pt)});

  const abp::GridPlacement grid(p.num_grids);
  ABP_CHECK(grid.grids_per_axis() == 20, "sqrt(NG) = 20");
  t2.add_row({"grids per axis", "sqrt(NG)",
              std::to_string(grid.grids_per_axis())});
  t2.add_row({"gridSide", "2R", TextTable::fmt(2.0 * p.range, 0) + "m"});

  // Grid centers span [gridSide/2, Side - gridSide/2] = [15, 85].
  const abp::Lattice2D lattice = p.lattice();
  abp::SurveyData survey(lattice);
  lattice.for_each([&](std::size_t flat, abp::Vec2) { survey.record(flat, 0.0); });
  auto ctx = abp::PlacementContext::basic(survey, p.bounds(), p.range);
  const auto scores = grid.scores(ctx);
  ABP_CHECK(scores.size() == 400, "NG grids");
  t2.add_row({"first grid center", "(gridSide/2, gridSide/2)",
              "(15, 15)"});
  t2.add_row({"last grid center", "(Side-gridSide/2, ...)", "(85, 85)"});
  ABP_CHECK(std::abs(scores.front().center.x - 15.0) < 1e-9, "Xc(1,1)=15");
  ABP_CHECK(std::abs(scores.back().center.x - 85.0) < 1e-9, "Xc(20,20)=85");

  // PG ≈ PT·(2R)²/Side² (paper's approximation) vs exact membership.
  const double pg_formula = static_cast<double>(pt) * 900.0 / 10000.0;
  t2.add_row({"PG (paper approx.)", "PT*(2R)^2/Side^2",
              TextTable::fmt(pg_formula, 0)});
  t2.add_row({"PG (exact, interior grid)", "lattice points in 30x30 box",
              std::to_string(scores[scores.size() / 2].points)});

  // Density axis endpoints (§4.1).
  t2.add_row({"density @ 20 beacons", "N/Side^2",
              TextTable::fmt(p.density(20), 4) + " /m^2"});
  t2.add_row({"density @ 240 beacons", "N/Side^2",
              TextTable::fmt(p.density(240), 4) + " /m^2"});
  t2.add_row({"beacons/coverage @ 20", "density*pi*R^2",
              TextTable::fmt(p.beacons_per_coverage(20), 2)});
  t2.add_row({"beacons/coverage @ 240", "density*pi*R^2",
              TextTable::fmt(p.beacons_per_coverage(240), 2)});
  ABP_CHECK(std::abs(p.beacons_per_coverage(20) - 1.41) < 0.01,
            "paper: 1.41 beacons per coverage area at N=20");
  ABP_CHECK(std::abs(p.beacons_per_coverage(240) - 17.0) < 0.05,
            "paper: 17 beacons per coverage area at N=240");

  t2.print(std::cout);
  std::cout << "\nAll derived quantities match the paper's formulas.\n";
  return 0;
}
