/// bench_ablation_survey — relaxing the §3.1 baseline assumptions
/// ("an off-line algorithm with complete terrain exploration and no
/// measurement noise"): how do Max and Grid degrade when the robot's
/// survey is partial (coarser boustrophedon stride) or its GPS is noisy?
///
/// For each survey fidelity we let the algorithm propose from the degraded
/// survey but score the proposal against ground truth (the improvement a
/// real deployment would see). Grid's area aggregation should make it far
/// more robust than Max, whose single-point argmax chases measurement
/// artifacts — the quantitative version of §3.2.2's local-maxima caveat.
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "eval/config.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "radio/noise_model.h"
#include "robot/surveyor.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 25);
  const std::size_t beacons =
      static_cast<std::size_t>(flags.get_int("beacons", 30));
  const std::uint64_t seed = flags.get_u64("seed", 20010421);
  flags.check_unused();

  const abp::PaperParams params;
  std::cout << "=== Ablation: survey fidelity (stride, GPS error) — "
            << beacons << " beacons, Noise=0.3, " << trials
            << " fields/cell ===\n\n";

  struct Fidelity {
    const char* label;
    std::size_t stride;
    double gps_sigma;
  };
  const Fidelity fidelities[] = {
      {"complete, ideal GPS (paper baseline)", 1, 0.0},
      {"stride 2 (25% of points)", 2, 0.0},
      {"stride 4 (6% of points)", 4, 0.0},
      {"stride 8 (1.6% of points)", 8, 0.0},
      {"complete, GPS sigma 1 m", 1, 1.0},
      {"complete, GPS sigma 3 m", 1, 3.0},
      {"stride 4 + GPS sigma 3 m", 4, 3.0},
  };

  const abp::MaxPlacement max;
  const abp::GridPlacement grid;

  abp::TextTable table({"survey fidelity", "max gain (m)", "grid gain (m)"});
  for (const Fidelity& f : fidelities) {
    abp::RunningStats max_gain, grid_gain;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t trial_seed =
          abp::derive_seed(seed, f.stride, static_cast<std::uint64_t>(
                                               f.gps_sigma * 10.0),
                           static_cast<std::uint64_t>(t));
      const abp::PerBeaconNoiseModel model(params.range, 0.3,
                                           abp::derive_seed(trial_seed, 2));
      abp::BeaconField field(params.bounds(), model.max_range());
      abp::Rng field_rng(abp::derive_seed(trial_seed, 1));
      scatter_uniform(field, beacons, field_rng);
      abp::ErrorMap truth(params.lattice());
      truth.compute(field, model);

      const abp::Surveyor surveyor(field, model,
                                   {.gps = abp::GpsModel(f.gps_sigma)});
      abp::Rng tour_rng(abp::derive_seed(trial_seed, 3));
      const abp::SurveyData survey = surveyor.survey(
          params.lattice(), boustrophedon_tour(params.lattice(), f.stride),
          tour_rng);

      auto ctx = abp::PlacementContext::basic(survey, params.bounds(),
                                              params.range);
      abp::Rng alg_rng(abp::derive_seed(trial_seed, 4));
      const double before = truth.mean();
      max_gain.add(before -
                   truth.mean_if_added(field, model,
                                       params.bounds().clamp(
                                           max.propose(ctx, alg_rng))));
      grid_gain.add(before -
                    truth.mean_if_added(field, model,
                                        params.bounds().clamp(
                                            grid.propose(ctx, alg_rng))));
    }
    table.add_row({f.label,
                   abp::TextTable::fmt(max_gain.mean(), 3) + " ±" +
                       abp::TextTable::fmt(max_gain.ci95(), 3),
                   abp::TextTable::fmt(grid_gain.mean(), 3) + " ±" +
                       abp::TextTable::fmt(grid_gain.ci95(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nExpect Grid's gain to be nearly flat across fidelities "
               "(cumulative scores average out sparsity and GPS error) "
               "while Max degrades with noisy GPS readings.\n";
  return 0;
}
