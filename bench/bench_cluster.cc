/// bench_cluster — routed serving: goodput/p99 vs backend count, the
/// kill-one-backend recovery curve, and the write path under load.
///
/// Method: N in-process backends (threaded `Server`s behind loopback
/// transports) sit behind the cluster router exactly as over TCP — same
/// ring, pool, replicator, and wire codec; only the byte pipe is
/// in-process. `--deployments` fields are registered and synced so the
/// ring actually spreads load. Four sections:
///
///  1. Scaling sweep: closed-loop windowed load through the router for
///     each backend count in `--sweep-backends`; reports goodput,
///     client-observed p50/p99, and the shed/error count. The claim:
///     goodput grows with backends because deployments shard across them,
///     while the router adds one queue hop of latency.
///
///  2. Recovery curve: 3 backends, replication 2, continuous windowed
///     load; mid-run the backend owning the most deployments is killed
///     (its transport throws, like a crashed peer). Completions are
///     bucketed over time, showing the dip while the breaker trips and
///     failover warms, then the recovery to a 2-backend plateau. The
///     router's invariant — every submission answered exactly once, with
///     failures surfacing as retryable statuses, never silence — is
///     asserted at the end.
///
///  3. Write-heavy mix: 1-in-`--write-every` requests are `add-beacon`
///     writes riding the replicated mutation log (append, quorum fan-out,
///     ack); the rest are localize reads fenced at the last acked version.
///     Reports mixed goodput/p99 plus the write ledger (submitted, acked,
///     quorum failures).
///
///  4. Replay-recovery curve: same mix; mid-run one backend dies, later it
///     revives. While dead, its deployments' writes still ack (quorum on
///     the survivors); on revival the heartbeat probe closes the breaker
///     and the replicator replays the missed log suffix instead of
///     re-shipping snapshots. The curve shows the dip and the catch-up;
///     the victim's install/replay counters prove the replay path ran.
///
///  5. Autoscale curve: 2 backends under a steady zipfian read + write
///     mix; mid-run a third backend is added through the membership admin
///     plane (snapshot handoff, fenced epoch flip) and later drained back
///     out. Goodput per bucket shows the cost of each transition; the
///     section asserts zero non-retryable client failures, the expected
///     epoch count, and post-transition byte-identity against the log.
///
///  6. Multi-tenant zipfian reads: a noisy tenant (principal 1) floods a
///     zipf-popular hot-key set while an innocent tenant (principal 2)
///     sends a steady trickle of the same distribution, under three
///     configs — cache on, cache off, and cache+quota. The router clock is
///     injected and advanced by the driver, so quota admission is
///     deterministic: with quotas on the noisy tenant sheds against its
///     own bucket while the innocent tenant's p99 is measured clean.
///     Reports per-tenant p50/p99/sheds and the cache hit rate.
///
///  7. Retry storm: `--storm-clients` retrying clients each push
///     `--storm-writes` add-beacons through a seeded duplicate/reset fault
///     schedule (`make_retry_storm_script`) between client and router, with
///     request-id dedup on vs off. Reports the delivery amplification, the
///     duplicate-suppression rate, and per-logical-write p99. The claim:
///     with dedup on, however many times the storm re-delivers a write, at
///     most one append lands per logical write; with dedup off every
///     re-delivery appends a phantom beacon.
///
/// `--json PATH` writes every section machine-readable for CI trending.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/membership.h"
#include "cluster/replicator.h"
#include "cluster/ring.h"
#include "cluster/router.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "field/generators.h"
#include "io/field_io.h"
#include "rng/rng.h"
#include "serve/client.h"
#include "serve/fault_transport.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace abp::cluster {
namespace {

constexpr std::size_t kBeacons = 40;

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

BeaconField make_field(std::uint64_t seed) {
  BeaconField field(AABB::square(100.0), 15.0);
  Rng rng(seed);
  scatter_uniform(field, kBeacons, rng);
  return field;
}

serve::ServiceConfig bench_config() {
  serve::ServiceConfig config;
  config.lattice_step = 2.0;
  return config;
}

/// A backend that can be killed mid-run: the wrapped loopback starts
/// throwing like a crashed TCP peer the moment `dead` flips.
class KillableTransport final : public serve::ClientTransport {
 public:
  KillableTransport(serve::Server& server, std::atomic<bool>& dead)
      : inner_(server), dead_(&dead) {}

  serve::Response roundtrip(const serve::Request& request) override {
    check_alive();
    return inner_.roundtrip(request);
  }

  void send_async(const serve::Request& request,
                  std::function<void(std::string)> on_reply) override {
    check_alive();
    inner_.send_async(request, std::move(on_reply));
  }

  void flush() override {
    check_alive();
    inner_.flush();
  }

  std::string name() const override { return "killable-loopback"; }

 private:
  void check_alive() const {
    if (dead_->load(std::memory_order_acquire)) {
      throw serve::ServeError("backend killed");
    }
  }

  serve::LoopbackTransport inner_;
  std::atomic<bool>* dead_;
};

struct SimBackend {
  std::unique_ptr<serve::LocalizationService> service;
  std::unique_ptr<serve::Server> server;
  std::atomic<bool> dead{false};
};

/// A full in-process cluster: N threaded backends behind the router.
struct SimCluster {
  SimCluster(std::size_t backends, std::size_t replication,
             std::size_t deployments, std::size_t workers,
             std::size_t max_batch, double probe_interval_ms = 1000.0,
             std::size_t log_retain = MutationLog::kDefaultRetain,
             RouterOptions router_options = {})
      : workers_(workers), max_batch_(max_batch) {
    for (std::size_t i = 0; i < backends; ++i) {
      names.push_back("b" + std::to_string(i));
    }
    for (const std::string& name : names) add_sim(name);
    membership = std::make_unique<MembershipTable>(names);
    BackendPoolOptions pool_options;
    pool_options.probe_interval_ms = probe_interval_ms;
    pool = std::make_unique<BackendPool>(
        names, pool_options, metrics, [this](const std::string& name) {
          SimBackend& backend = sims.at(name);
          return std::make_unique<KillableTransport>(*backend.server,
                                                     backend.dead);
        });
    replicator = std::make_unique<Replicator>(*pool, *membership, replication,
                                              metrics, log_retain);
    pool->set_recovery_callback([this](const std::string& backend) {
      replicator->sync_backend(backend);
    });
    router = std::make_unique<Router>(*membership, *pool, *replicator,
                                      metrics, router_options);
    pool->start();
    for (std::size_t d = 0; d < deployments; ++d) {
      std::ostringstream text;
      write_field(text, make_field(1000 + d));
      replicator->set_deployment("f" + std::to_string(d), text.str());
    }
    replicator->sync_all();
  }

  ~SimCluster() { pool->stop(); }

  /// Spin up a backend sim so the pool's transport factory can reach it —
  /// must precede `admin("add", name)`.
  SimBackend& add_sim(const std::string& name) {
    auto& backend = sims[name];
    backend.service =
        std::make_unique<serve::LocalizationService>(bench_config());
    serve::Server::Options options;
    options.workers = workers_;
    options.max_batch = max_batch_;
    backend.server =
        std::make_unique<serve::Server>(*backend.service, options);
    return backend;
  }

  /// Drive the membership admin plane over the wire (same payload shape as
  /// `abp route-admin`); blocks until the transition completes.
  serve::Response admin(const std::string& verb,
                        const std::string& backend = "") {
    serve::Request request;
    request.endpoint = serve::Endpoint::kAdmin;
    request.algorithm = verb;
    if (!backend.empty()) request.text = backend + "\n";
    auto done = std::make_shared<std::promise<std::string>>();
    auto future = done->get_future();
    router->submit(serve::format_request(request),
                   [done](std::string payload) {
                     done->set_value(std::move(payload));
                   });
    const auto response = serve::parse_response(future.get());
    return response ? *response : serve::Response{};
  }

  /// The backend owning the most deployments — the worst-case victim for
  /// the kill experiment.
  std::string busiest_backend() const {
    std::map<std::string, std::size_t> owned;
    for (const std::string& name : replicator->names()) {
      for (const std::string& owner : replicator->owners(name)) {
        ++owned[owner];
      }
    }
    std::string busiest = names.front();
    for (const auto& [name, count] : owned) {
      if (count > owned[busiest]) busiest = name;
    }
    return busiest;
  }

  std::vector<std::string> names;
  std::unique_ptr<MembershipTable> membership;
  serve::RouterMetrics metrics;
  std::map<std::string, SimBackend> sims;
  std::unique_ptr<BackendPool> pool;
  std::unique_ptr<Replicator> replicator;
  std::unique_ptr<Router> router;

 private:
  std::size_t workers_;
  std::size_t max_batch_;
};

serve::Request localize_request(std::uint64_t seq, std::size_t deployments) {
  serve::Request request;
  request.seq = seq;
  request.endpoint = serve::Endpoint::kLocalize;
  request.field = "f" + std::to_string(seq % deployments);
  const double t = static_cast<double>(seq % 257) / 257.0;
  request.points = {{100.0 * t, 100.0 * (1.0 - t)}};
  return request;
}

serve::Request add_beacon_request(std::uint64_t seq, std::size_t deployments) {
  serve::Request request;
  request.seq = seq;
  request.endpoint = serve::Endpoint::kAddBeacon;
  request.field = "f" + std::to_string(seq % deployments);
  const double t = static_cast<double>(seq % 127) / 127.0;
  request.points = {{100.0 * t, 100.0 * t}};
  return request;
}

/// 1-in-`write_every` requests is a quorum-acked write, the rest reads.
serve::Request mixed_request(std::uint64_t seq, std::size_t deployments,
                             std::size_t write_every) {
  return seq % write_every == 0 ? add_beacon_request(seq, deployments)
                                : localize_request(seq, deployments);
}

struct LoadResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t non_ok = 0;
  /// Of `non_ok`, replies whose status was terminal (not retryable) — the
  /// autoscale section requires this to stay zero through transitions.
  std::uint64_t non_retryable = 0;
  double elapsed_s = 0.0;
  Histogram latency_us = Histogram::latency_us();
  std::vector<std::uint64_t> ok_buckets;  ///< completions per bucket_s bin
};

/// Closed-loop windowed load through the router. `on_window` runs between
/// windows (the kill/revive hook); `bucket_s` > 0 additionally bins
/// completions over time for the recovery curves. `make_request` shapes
/// the workload (read-only by default, mixed for the write sections).
LoadResult drive_load(
    SimCluster& cluster, std::size_t deployments, double duration_s,
    std::size_t window, double bucket_s = 0.0,
    const std::function<void(double)>& on_window = {},
    const std::function<serve::Request(std::uint64_t)>& make_request = {}) {
  LoadResult result;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t outstanding = 0;
  std::uint64_t seq = 0;

  const double start = steady_now_s();
  while (steady_now_s() - start < duration_s) {
    if (on_window) on_window(steady_now_s() - start);
    {
      std::lock_guard<std::mutex> lock(mu);
      outstanding = window;
    }
    for (std::size_t i = 0; i < window; ++i) {
      const double sent_at = steady_now_s();
      ++result.sent;
      const serve::Request request =
          make_request ? make_request(seq++)
                       : localize_request(seq++, deployments);
      cluster.router->submit(
          serve::format_request(request),
          [&, sent_at](std::string payload) {
            const double now = steady_now_s();
            const auto response = serve::parse_response(payload);
            const bool ok =
                response && response->status == serve::Status::kOk;
            std::lock_guard<std::mutex> lock(mu);
            result.latency_us.add((now - sent_at) * 1e6);
            if (ok) {
              ++result.ok;
              if (bucket_s > 0.0) {
                const auto bucket =
                    static_cast<std::size_t>((now - start) / bucket_s);
                if (result.ok_buckets.size() <= bucket) {
                  result.ok_buckets.resize(bucket + 1, 0);
                }
                ++result.ok_buckets[bucket];
              }
            } else {
              ++result.non_ok;
              if (!response || !serve::status_retryable(response->status)) {
                ++result.non_retryable;
              }
            }
            if (--outstanding == 0) cv.notify_one();
          });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
  result.elapsed_s = steady_now_s() - start;
  return result;
}

std::vector<std::size_t> parse_count_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) {
      out.push_back(static_cast<std::size_t>(std::stoul(item)));
    }
  }
  return out;
}

}  // namespace
}  // namespace abp::cluster

int main(int argc, char** argv) {
  using namespace abp::cluster;
  const abp::Flags flags(argc, argv);
  const std::vector<std::size_t> sweep =
      parse_count_list(flags.get_string("sweep-backends", "1,2,4"));
  const auto replication =
      static_cast<std::size_t>(flags.get_int("replication", 2));
  const auto deployments =
      static_cast<std::size_t>(flags.get_int("deployments", 8));
  const auto workers = static_cast<std::size_t>(flags.get_int("workers", 2));
  const auto max_batch = static_cast<std::size_t>(flags.get_int("batch", 16));
  const auto window = static_cast<std::size_t>(flags.get_int("window", 64));
  const double sweep_s = flags.get_double("sweep-s", 1.0);
  const double recover_s = flags.get_double("recover-s", 2.0);
  const double autoscale_s = flags.get_double("autoscale-s", 3.0);
  const double bucket_ms = flags.get_double("bucket-ms", 100.0);
  const auto write_every =
      static_cast<std::size_t>(flags.get_int("write-every", 10));
  const double probe_ms = flags.get_double("probe-ms", 100.0);
  const auto log_retain =
      static_cast<std::size_t>(flags.get_int("log-retain", 8192));
  const auto storm_clients =
      static_cast<std::size_t>(flags.get_int("storm-clients", 4));
  const auto storm_writes =
      static_cast<std::size_t>(flags.get_int("storm-writes", 48));
  const auto tenant_steps =
      static_cast<std::size_t>(flags.get_int("tenant-steps", 60));
  const double zipf_s = flags.get_double("zipf-s", 1.1);
  const std::string json_path = flags.get_string("json", "");
  flags.check_unused();

  bool healthy = true;
  std::ostringstream json;
  json << "{\n"
       << "  \"_comment\": \"bench_cluster: in-process routed cluster"
          " (loopback transports, real ring/pool/replicator/codec)."
          " scaling = goodput sweep over backend counts; read_recovery ="
          " ok-per-bucket curve around a backend kill; write_mix = 1-in-"
       << write_every
       << " add-beacon through the replicated mutation log; replay_recovery"
          " = write mix with kill+revive, victim catches up by log replay;"
          " autoscale = membership add then drain mid-run under zipf load;"
          " retry_storm = seeded duplicate/reset schedule between client and"
          " router, request-id dedup on vs off (storm-clients="
       << storm_clients << " storm-writes=" << storm_writes
       << " per client); multi_tenant = zipf(s=" << zipf_s
       << ") two-tenant reads on a driver-owned router clock, cache on/off"
          " and per-principal quotas (noisy vs innocent p99). replication="
       << replication << " deployments=" << deployments << " workers="
       << workers << " window=" << window << " log-retain=" << log_retain
       << " probe-ms=" << probe_ms << "\",\n";

  std::cout << "=== Cluster routing: goodput vs backend count ===\n"
            << "replication=" << replication << " deployments=" << deployments
            << " workers/backend=" << workers << " window=" << window
            << " sweep-s=" << sweep_s << "\n\n";

  abp::TextTable table({"backends", "goodput q/s", "p50 ms", "p99 ms",
                        "non-ok", "forwarded"});
  json << "  \"scaling\": [\n";
  for (std::size_t s = 0; s < sweep.size(); ++s) {
    const std::size_t backends = sweep[s];
    SimCluster cluster(backends, std::min(replication, backends), deployments,
                       workers, max_batch);
    const LoadResult r = drive_load(cluster, deployments, sweep_s, window);
    const auto goodput = static_cast<std::uint64_t>(
        static_cast<double>(r.ok) / r.elapsed_s);
    table.add_row({std::to_string(backends), std::to_string(goodput),
                   abp::TextTable::fmt(r.latency_us.p50() / 1e3, 2),
                   abp::TextTable::fmt(r.latency_us.p99() / 1e3, 2),
                   std::to_string(r.non_ok),
                   std::to_string(cluster.metrics.forwarded_total())});
    json << "    {\"backends\": " << backends
         << ", \"goodput_qps\": " << goodput
         << ", \"p50_ms\": " << r.latency_us.p50() / 1e3
         << ", \"p99_ms\": " << r.latency_us.p99() / 1e3
         << ", \"non_ok\": " << r.non_ok << "}"
         << (s + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  table.print(std::cout);
  std::cout << "\nReading: deployments shard across backends, so routed"
               " goodput scales with the backend count until the router's"
               " forwarding loop saturates.\n";

  // Exactly-once accounting shared by every load section: every submission
  // came back, and the backends' ledgers reconcile.
  const auto check_load = [&healthy](SimCluster& cluster, const LoadResult& r,
                                     const char* context) {
    if (r.sent != r.ok + r.non_ok) {
      healthy = false;
      std::cout << "LOST REPLIES (" << context << "): sent " << r.sent
                << " != ok " << r.ok << " + non-ok " << r.non_ok << "\n";
    }
    for (const auto& [name, sim] : cluster.sims) {
      const abp::serve::ServiceMetrics& m = sim.service->metrics();
      if (m.submitted() != m.completed() + m.shed_total()) {
        healthy = false;
        std::cout << "RECONCILIATION FAILURE (" << context << "): backend "
                  << name << ": submitted " << m.submitted()
                  << " != completed " << m.completed() << " + shed "
                  << m.shed_total() << "\n";
      }
    }
  };

  const auto print_curve = [&bucket_ms](const LoadResult& r, double kill_at_s,
                                        double revive_at_s) {
    abp::TextTable curve({"t ms", "ok/bucket"});
    for (std::size_t i = 0; i < r.ok_buckets.size(); ++i) {
      const double t_ms = static_cast<double>(i) * bucket_ms;
      std::string mark;
      if (t_ms <= kill_at_s * 1e3 && kill_at_s * 1e3 < t_ms + bucket_ms) {
        mark = " <- kill";
      }
      if (revive_at_s > 0.0 && t_ms <= revive_at_s * 1e3 &&
          revive_at_s * 1e3 < t_ms + bucket_ms) {
        mark += " <- revive";
      }
      curve.add_row({abp::TextTable::fmt(t_ms, 0) + mark,
                     std::to_string(r.ok_buckets[i])});
    }
    curve.print(std::cout);
  };

  const auto json_buckets = [](std::ostringstream& out,
                               const std::vector<std::uint64_t>& buckets) {
    out << "[";
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      out << buckets[i] << (i + 1 < buckets.size() ? ", " : "");
    }
    out << "]";
  };

  // ---- kill-one-backend recovery curve (read-only load) ----------------
  {
    const std::size_t kRecoverBackends = 3;
    SimCluster cluster(kRecoverBackends, std::min<std::size_t>(2, replication),
                       deployments, workers, max_batch);
    const std::string victim = cluster.busiest_backend();
    const double kill_at_s = recover_s / 3.0;
    std::cout << "\n=== Recovery: kill '" << victim << "' (busiest of "
              << kRecoverBackends
              << ") at t=" << abp::TextTable::fmt(kill_at_s, 2) << "s ===\n\n";

    bool killed = false;
    const LoadResult r = drive_load(
        cluster, deployments, recover_s, window, bucket_ms / 1e3,
        [&](double t_s) {
          if (!killed && t_s >= kill_at_s) {
            cluster.sims.at(victim).dead.store(true,
                                               std::memory_order_release);
            killed = true;
          }
        });

    print_curve(r, kill_at_s, 0.0);
    check_load(cluster, r, "read recovery");
    const auto snapshot = cluster.metrics.backend_snapshot(victim);
    std::cout << "\nanswered " << r.ok << " ok + " << r.non_ok << " non-ok of "
              << r.sent << " sent; victim saw " << snapshot.transport_failures
              << " transport failure(s), marked down " << snapshot.marked_down
              << "x\n"
              << "Reading: the dip at the kill is the breaker tripping and"
                 " idempotent retries landing on the surviving replica; the"
                 " curve then holds at the 2-backend plateau without lost or"
                 " duplicated replies.\n";
    json << "  \"read_recovery\": {\"bucket_ms\": " << bucket_ms
         << ", \"kill_at_ms\": " << kill_at_s * 1e3 << ", \"ok_buckets\": ";
    json_buckets(json, r.ok_buckets);
    json << "},\n";
  }

  // ---- write-heavy mixed workload --------------------------------------
  {
    const std::size_t kWriteBackends = 3;
    SimCluster cluster(kWriteBackends, std::min(replication, kWriteBackends),
                       deployments, workers, max_batch, probe_ms, log_retain);
    std::cout << "\n=== Write mix: 1-in-" << write_every
              << " requests is a quorum-acked add-beacon ===\n\n";
    const LoadResult r =
        drive_load(cluster, deployments, sweep_s, window, 0.0, {},
                   [&](std::uint64_t seq) {
                     return mixed_request(seq, deployments, write_every);
                   });
    const auto goodput = static_cast<std::uint64_t>(
        static_cast<double>(r.ok) / r.elapsed_s);
    abp::TextTable mix({"goodput q/s", "p50 ms", "p99 ms", "non-ok", "writes",
                        "write-acks", "quorum-failures"});
    mix.add_row({std::to_string(goodput),
                 abp::TextTable::fmt(r.latency_us.p50() / 1e3, 2),
                 abp::TextTable::fmt(r.latency_us.p99() / 1e3, 2),
                 std::to_string(r.non_ok),
                 std::to_string(cluster.metrics.writes()),
                 std::to_string(cluster.metrics.write_acks()),
                 std::to_string(cluster.metrics.write_quorum_failures())});
    mix.print(std::cout);
    check_load(cluster, r, "write mix");
    if (cluster.metrics.write_acks() == 0) {
      healthy = false;
      std::cout << "NO WRITES ACKED in the write-mix section\n";
    }
    std::cout << "\nReading: writes serialize through the mutation log and"
                 " fan out to every owner, so the mixed p99 carries the"
                 " quorum round trip; reads ride the fenced fast path.\n";
    json << "  \"write_mix\": {\"write_every\": " << write_every
         << ", \"goodput_qps\": " << goodput
         << ", \"p50_ms\": " << r.latency_us.p50() / 1e3
         << ", \"p99_ms\": " << r.latency_us.p99() / 1e3
         << ", \"non_ok\": " << r.non_ok
         << ", \"writes\": " << cluster.metrics.writes()
         << ", \"write_acks\": " << cluster.metrics.write_acks()
         << ", \"quorum_failures\": "
         << cluster.metrics.write_quorum_failures() << "},\n";
  }

  // ---- replay-recovery curve (mixed load, kill + revive) ---------------
  {
    const std::size_t kReplayBackends = 3;
    // Full replication: every backend owns every deployment, so writes keep
    // acking 2-of-3 while the victim is down and the missed suffix is
    // replayed to it on revival.
    SimCluster cluster(kReplayBackends, kReplayBackends, deployments, workers,
                       max_batch, probe_ms, log_retain);
    const std::string victim = cluster.busiest_backend();
    const double kill_at_s = recover_s / 3.0;
    const double revive_at_s = 2.0 * recover_s / 3.0;
    std::cout << "\n=== Replay recovery: kill '" << victim << "' at t="
              << abp::TextTable::fmt(kill_at_s, 2) << "s, revive at t="
              << abp::TextTable::fmt(revive_at_s, 2)
              << "s (write mix, replication " << kReplayBackends << ") ===\n\n";

    bool killed = false;
    bool revived = false;
    const LoadResult r = drive_load(
        cluster, deployments, recover_s, window, bucket_ms / 1e3,
        [&](double t_s) {
          if (!killed && t_s >= kill_at_s) {
            cluster.sims.at(victim).dead.store(true,
                                               std::memory_order_release);
            killed = true;
          }
          if (!revived && t_s >= revive_at_s) {
            cluster.sims.at(victim).dead.store(false,
                                               std::memory_order_release);
            revived = true;
          }
          // The heartbeat the CLI runs on a thread: probes open breakers,
          // closing them fires the replicator's replay/resync recovery.
          cluster.pool->tick();
        },
        [&](std::uint64_t seq) {
          return mixed_request(seq, deployments, write_every);
        });

    // Let the post-revival replay drain, then check convergence: every
    // owner must hold the log's version for every deployment.
    const double drain_deadline = steady_now_s() + 2.0;
    bool converged = false;
    while (!converged && steady_now_s() < drain_deadline) {
      cluster.pool->tick();
      converged = true;
      for (const std::string& name : cluster.replicator->names()) {
        for (const std::string& owner : cluster.replicator->owners(name)) {
          if (cluster.sims.at(owner).service->field_version(name) !=
              cluster.replicator->version(name)) {
            converged = false;
          }
        }
      }
      if (!converged) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }

    print_curve(r, kill_at_s, revive_at_s);
    check_load(cluster, r, "replay recovery");
    if (!converged) {
      healthy = false;
      std::cout << "CONVERGENCE FAILURE: replicas still lag the log 2s after"
                   " the run\n";
    }
    // Byte-identity: after convergence the victim's snapshots must equal
    // the log authority exactly.
    for (const std::string& name : cluster.replicator->names()) {
      abp::serve::Request fetch;
      fetch.endpoint = abp::serve::Endpoint::kSnapshot;
      fetch.field = name;
      const std::string log_text = cluster.replicator->log().snapshot(name).text;
      if (cluster.sims.at(victim).service->handle(fetch).text != log_text) {
        healthy = false;
        std::cout << "BYTE-IDENTITY FAILURE: victim snapshot of '" << name
                  << "' differs from the log authority\n";
      }
    }
    const auto snapshot = cluster.metrics.backend_snapshot(victim);
    std::cout << "\nwrites " << cluster.metrics.writes() << " acked "
              << cluster.metrics.write_acks() << " quorum-failures "
              << cluster.metrics.write_quorum_failures() << "; victim caught"
              << " up via " << snapshot.replays << " replay(s) + "
              << (snapshot.installs > deployments ? snapshot.installs -
                      deployments : 0)
              << " resync install(s), byte-identical "
              << (converged && healthy ? "yes" : "NO") << "\n"
              << "Reading: writes keep acking at quorum 2-of-3 through the"
                 " outage; on revival the laggard replays the retained log"
                 " suffix (or re-installs when too far behind) and converges"
                 " to byte-identical state.\n";
    json << "  \"replay_recovery\": {\"bucket_ms\": " << bucket_ms
         << ", \"kill_at_ms\": " << kill_at_s * 1e3
         << ", \"revive_at_ms\": " << revive_at_s * 1e3
         << ", \"writes\": " << cluster.metrics.writes()
         << ", \"write_acks\": " << cluster.metrics.write_acks()
         << ", \"quorum_failures\": " << cluster.metrics.write_quorum_failures()
         << ", \"victim_replays\": " << snapshot.replays
         << ", \"victim_installs\": " << snapshot.installs
         << ", \"converged\": " << (converged ? "true" : "false")
         << ", \"ok_buckets\": ";
    json_buckets(json, r.ok_buckets);
    json << "},\n";
  }

  // ---- autoscale: live scale-up then drain under steady zipfian load ---
  {
    namespace serve = abp::serve;
    constexpr std::size_t kHotKeys = 64;
    const std::string joiner = "b2";
    SimCluster cluster(2, 2, deployments, workers, max_batch, probe_ms,
                       log_retain);
    const double add_at_s = autoscale_s / 3.0;
    const double drain_at_s = 2.0 * autoscale_s / 3.0;
    std::cout << "\n=== Autoscale: add '" << joiner << "' at t="
              << abp::TextTable::fmt(add_at_s, 2) << "s, drain it at t="
              << abp::TextTable::fmt(drain_at_s, 2)
              << "s (zipf reads + 1-in-" << write_every
              << " writes) ===\n\n";

    // Zipf CDF over read ranks; repeats of a rank are byte-identical.
    std::vector<double> cdf(kHotKeys);
    double mass = 0.0;
    for (std::size_t r = 0; r < kHotKeys; ++r) {
      mass += 1.0 / std::pow(static_cast<double>(r + 1), zipf_s);
      cdf[r] = mass;
    }
    for (double& c : cdf) c /= mass;
    abp::Rng zipf_rng(0xA5CA1E);  // only touched from the driver loop
    const auto zipf_read = [&](std::uint64_t seq) {
      const auto rank = static_cast<std::size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), zipf_rng.uniform01()) -
          cdf.begin());
      serve::Request request;
      request.seq = seq;
      request.endpoint = serve::Endpoint::kLocalize;
      request.field = "f" + std::to_string(rank % deployments);
      const double t = static_cast<double>(rank) / kHotKeys;
      request.points = {{100.0 * t, 100.0 * (1.0 - t)}};
      return request;
    };

    // The admin verbs block until the handoff/drain completes, so they run
    // on their own threads — the load loop keeps submitting throughout.
    std::atomic<bool> add_ok{false};
    std::atomic<bool> drain_ok{false};
    std::thread add_thread, drain_thread;
    bool added = false;
    bool drained = false;
    const LoadResult r = drive_load(
        cluster, deployments, autoscale_s, window, bucket_ms / 1e3,
        [&](double t_s) {
          if (!added && t_s >= add_at_s) {
            cluster.add_sim(joiner);
            add_thread = std::thread([&] {
              const serve::Response response = cluster.admin("add", joiner);
              add_ok = response.status == serve::Status::kOk;
            });
            added = true;
          }
          if (!drained && t_s >= drain_at_s) {
            if (add_thread.joinable()) add_thread.join();
            drain_thread = std::thread([&] {
              const serve::Response response = cluster.admin("drain", joiner);
              drain_ok = response.status == serve::Status::kOk;
            });
            drained = true;
          }
          cluster.pool->tick();
        },
        [&](std::uint64_t seq) {
          return seq % write_every == 0 ? add_beacon_request(seq, deployments)
                                        : zipf_read(seq);
        });
    if (add_thread.joinable()) add_thread.join();
    if (drain_thread.joinable()) drain_thread.join();

    print_curve(r, add_at_s, drain_at_s);  // marks: kill = add, revive = drain
    check_load(cluster, r, "autoscale");
    if (!add_ok || !drain_ok) {
      healthy = false;
      std::cout << "MEMBERSHIP TRANSITION FAILED: add "
                << (add_ok ? "ok" : "FAILED") << ", drain "
                << (drain_ok ? "ok" : "FAILED") << "\n";
    }
    if (r.non_retryable != 0) {
      healthy = false;
      std::cout << "NON-RETRYABLE CLIENT FAILURES during autoscale: "
                << r.non_retryable << "\n";
    }
    // Start epoch 1, +1 when the joiner activates, +1 when it drains.
    if (cluster.membership->epoch() != 3) {
      healthy = false;
      std::cout << "EPOCH MISMATCH: expected 3, got "
                << cluster.membership->epoch() << "\n";
    }
    // Convergence + byte-identity: every surviving owner ends at the log's
    // version with the log's exact snapshot bytes.
    const double drain_deadline = steady_now_s() + 2.0;
    bool converged = false;
    while (!converged && steady_now_s() < drain_deadline) {
      cluster.pool->tick();
      converged = true;
      for (const std::string& name : cluster.replicator->names()) {
        for (const std::string& owner : cluster.replicator->owners(name)) {
          if (cluster.sims.at(owner).service->field_version(name) !=
              cluster.replicator->version(name)) {
            converged = false;
          }
        }
      }
      if (!converged) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (!converged) {
      healthy = false;
      std::cout << "CONVERGENCE FAILURE after autoscale\n";
    } else {
      for (const std::string& name : cluster.replicator->names()) {
        serve::Request fetch;
        fetch.endpoint = serve::Endpoint::kSnapshot;
        fetch.field = name;
        const std::string log_text =
            cluster.replicator->log().snapshot(name).text;
        for (const std::string& owner : cluster.replicator->owners(name)) {
          if (cluster.sims.at(owner).service->handle(fetch).text != log_text) {
            healthy = false;
            std::cout << "BYTE-IDENTITY FAILURE: '" << owner
                      << "' snapshot of '" << name
                      << "' differs from the log authority\n";
          }
        }
      }
    }
    const auto goodput = static_cast<std::uint64_t>(
        static_cast<double>(r.ok) / r.elapsed_s);
    std::cout << "\ngoodput " << goodput << " q/s p50 "
              << abp::TextTable::fmt(r.latency_us.p50() / 1e3, 2) << " ms p99 "
              << abp::TextTable::fmt(r.latency_us.p99() / 1e3, 2)
              << " ms; non-ok " << r.non_ok << " (non-retryable "
              << r.non_retryable << "); epoch "
              << cluster.membership->epoch() << ", handoff snapshots "
              << cluster.metrics.handoff_snapshots() << ", replays "
              << cluster.metrics.handoff_replays() << "\n"
              << "Reading: the joiner absorbs its transfer set before the"
                 " fenced epoch flip, so goodput holds through scale-up; the"
                 " drain stops new routing first and hands ranges back, so"
                 " the 3->2 step costs a remap, never an acked write.\n";
    json << "  \"autoscale\": {\"bucket_ms\": " << bucket_ms
         << ", \"add_at_ms\": " << add_at_s * 1e3
         << ", \"drain_at_ms\": " << drain_at_s * 1e3
         << ", \"goodput_qps\": " << goodput
         << ", \"p50_ms\": " << r.latency_us.p50() / 1e3
         << ", \"p99_ms\": " << r.latency_us.p99() / 1e3
         << ", \"non_ok\": " << r.non_ok
         << ", \"non_retryable\": " << r.non_retryable
         << ", \"epoch\": " << cluster.membership->epoch()
         << ", \"handoff_snapshots\": " << cluster.metrics.handoff_snapshots()
         << ", \"handoff_replays\": " << cluster.metrics.handoff_replays()
         << ", \"converged\": " << (converged ? "true" : "false")
         << ", \"ok_buckets\": ";
    json_buckets(json, r.ok_buckets);
    json << "},\n";
  }

  // ---- zipfian multi-tenant: noisy neighbor vs quota + cache -----------
  {
    namespace serve = abp::serve;
    constexpr std::size_t kHotKeys = 64;
    constexpr std::size_t kNoisyPerStep = 20;
    constexpr std::size_t kInnocentPerStep = 1;
    constexpr double kStepMs = 10.0;
    constexpr double kQuotaRps = 200.0;  // innocent demand 100/s, noisy 2000/s
    constexpr double kQuotaBurst = 20.0;
    std::cout << "\n=== Multi-tenant: zipf(s=" << zipf_s << ") reads over "
              << kHotKeys << " hot keys, noisy tenant 1 ("
              << kNoisyPerStep * 1000.0 / kStepMs << "/s) vs innocent"
              << " tenant 2 (" << kInnocentPerStep * 1000.0 / kStepMs
              << "/s), " << tenant_steps << " steps ===\n\n";

    // Zipf CDF over request ranks: rank 0 is the hottest question. Repeats
    // of a rank are byte-identical requests — exactly what the response
    // cache can serve.
    std::vector<double> cdf(kHotKeys);
    double mass = 0.0;
    for (std::size_t r = 0; r < kHotKeys; ++r) {
      mass += 1.0 / std::pow(static_cast<double>(r + 1), zipf_s);
      cdf[r] = mass;
    }
    for (double& c : cdf) c /= mass;
    const auto zipf_request = [&](abp::Rng& rng, std::uint64_t seq,
                                  std::uint64_t principal) {
      const auto rank = static_cast<std::size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), rng.uniform01()) -
          cdf.begin());
      serve::Request request;
      request.seq = seq;
      request.endpoint = serve::Endpoint::kLocalize;
      request.field = "f" + std::to_string(rank % deployments);
      const double t = static_cast<double>(rank) / kHotKeys;
      request.points = {{100.0 * t, 100.0 * (1.0 - t)}};
      request.principal = principal;
      return request;
    };

    struct TenantStats {
      std::uint64_t sent = 0;
      std::uint64_t ok = 0;
      std::uint64_t shed = 0;
      std::uint64_t other = 0;
      abp::Histogram latency_us = abp::Histogram::latency_us();
    };
    struct Pass {
      const char* label;
      bool cache;
      bool quota;
    };
    const Pass passes[] = {{"cache", true, false},
                           {"no-cache", false, false},
                           {"cache+quota", true, true}};

    abp::TextTable tenants({"config", "tenant", "sent", "ok", "shed",
                            "p50 ms", "p99 ms", "cache hit-rate"});
    json << "  \"multi_tenant\": [\n";
    for (std::size_t p = 0; p < std::size(passes); ++p) {
      const Pass& pass = passes[p];
      RouterOptions router_options;
      router_options.cache_entries = pass.cache ? 1024 : 0;
      if (pass.quota) {
        router_options.quota.rps = kQuotaRps;
        router_options.quota.burst = kQuotaBurst;
      }
      // The driver owns the router's clock: quota refill is a function of
      // simulated time, so shed/admit decisions are machine-independent.
      auto sim_clock = std::make_shared<std::atomic<double>>(0.0);
      router_options.clock_ms = [sim_clock] { return sim_clock->load(); };
      SimCluster cluster(3, std::min<std::size_t>(2, replication), deployments,
                         workers, max_batch, probe_ms, log_retain,
                         router_options);

      TenantStats stats[2];  // [0] = noisy principal 1, [1] = innocent 2
      abp::Rng noisy_rng(0xDADA), innocent_rng(0xFEED);
      std::mutex mu;
      std::condition_variable cv;
      std::size_t outstanding = 0;
      std::uint64_t seq = 0;
      const auto send = [&](TenantStats& tenant, abp::Rng& rng,
                            std::uint64_t principal) {
        const serve::Request request = zipf_request(rng, ++seq, principal);
        const double sent_at = steady_now_s();
        ++tenant.sent;
        cluster.router->submit(
            serve::format_request(request), [&, sent_at](std::string payload) {
              const double now = steady_now_s();
              const auto response = serve::parse_response(payload);
              std::lock_guard<std::mutex> lock(mu);
              tenant.latency_us.add((now - sent_at) * 1e6);
              if (response && response->status == serve::Status::kOk) {
                ++tenant.ok;
              } else if (response &&
                         response->status == serve::Status::kOverloaded) {
                ++tenant.shed;
              } else {
                ++tenant.other;
              }
              if (--outstanding == 0) cv.notify_one();
            });
      };
      for (std::size_t step = 0; step < tenant_steps; ++step) {
        {
          std::lock_guard<std::mutex> lock(mu);
          outstanding = kNoisyPerStep + kInnocentPerStep;
        }
        for (std::size_t i = 0; i < kNoisyPerStep; ++i) {
          send(stats[0], noisy_rng, 1);
        }
        for (std::size_t i = 0; i < kInnocentPerStep; ++i) {
          send(stats[1], innocent_rng, 2);
        }
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return outstanding == 0; });
        }
        sim_clock->store(sim_clock->load() + kStepMs);
      }

      const std::uint64_t hits = cluster.metrics.cache_hits();
      const std::uint64_t misses = cluster.metrics.cache_misses();
      const double hit_rate =
          hits + misses > 0
              ? static_cast<double>(hits) / static_cast<double>(hits + misses)
              : 0.0;
      for (int t = 0; t < 2; ++t) {
        tenants.add_row(
            {t == 0 ? pass.label : "", t == 0 ? "noisy" : "innocent",
             std::to_string(stats[t].sent), std::to_string(stats[t].ok),
             std::to_string(stats[t].shed),
             abp::TextTable::fmt(stats[t].latency_us.p50() / 1e3, 2),
             abp::TextTable::fmt(stats[t].latency_us.p99() / 1e3, 2),
             t == 0 ? abp::TextTable::fmt(hit_rate * 100.0, 1) + "%" : ""});
      }

      // Structural checks: the closed loop answered everything; quotas shed
      // only the tenant that outran its bucket; the cache actually engaged.
      for (int t = 0; t < 2; ++t) {
        if (stats[t].sent !=
            stats[t].ok + stats[t].shed + stats[t].other) {
          healthy = false;
          std::cout << "LOST REPLIES (multi-tenant " << pass.label << ")\n";
        }
        if (stats[t].other != 0) {
          healthy = false;
          std::cout << "UNEXPECTED STATUSES (multi-tenant " << pass.label
                    << "): " << stats[t].other << "\n";
        }
      }
      if (pass.cache && hits == 0) {
        healthy = false;
        std::cout << "CACHE NEVER HIT (multi-tenant " << pass.label << ")\n";
      }
      if (!pass.cache && hits + misses != 0) {
        healthy = false;
        std::cout << "CACHE COUNTED WHILE DISABLED\n";
      }
      if (pass.quota) {
        if (stats[1].shed != 0) {
          healthy = false;
          std::cout << "ISOLATION FAILURE: innocent tenant shed "
                    << stats[1].shed << "x under quota\n";
        }
        if (stats[0].shed == 0) {
          healthy = false;
          std::cout << "QUOTA NEVER ENGAGED: noisy tenant was never shed\n";
        }
        if (cluster.metrics.principal_quota_sheds(1) != stats[0].shed) {
          healthy = false;
          std::cout << "QUOTA LEDGER MISMATCH: router counted "
                    << cluster.metrics.principal_quota_sheds(1)
                    << " sheds, clients saw " << stats[0].shed << "\n";
        }
      }

      json << "    {\"config\": \"" << pass.label << "\", \"cache\": "
           << (pass.cache ? "true" : "false") << ", \"quota\": "
           << (pass.quota ? "true" : "false")
           << ", \"cache_hit_rate\": " << hit_rate << ", \"tenants\": [";
      for (int t = 0; t < 2; ++t) {
        json << "{\"tenant\": \"" << (t == 0 ? "noisy" : "innocent")
             << "\", \"sent\": " << stats[t].sent
             << ", \"ok\": " << stats[t].ok
             << ", \"shed\": " << stats[t].shed
             << ", \"p50_ms\": " << stats[t].latency_us.p50() / 1e3
             << ", \"p99_ms\": " << stats[t].latency_us.p99() / 1e3 << "}"
             << (t == 0 ? ", " : "");
      }
      json << "]}" << (p + 1 < std::size(passes) ? "," : "") << "\n";
    }
    json << "  ],\n";
    tenants.print(std::cout);
    std::cout << "\nReading: the zipf hot keys make the cache carry most of"
                 " the read load (p50 drops to the router's local path);"
                 " with quotas on, the noisy tenant sheds against its own"
                 " token bucket while the innocent tenant keeps its clean"
                 " p99 — per-tenant isolation, not global backpressure.\n";
  }

  // ---- retry storm: duplicate suppression, dedup on vs off -------------
  {
    namespace serve = abp::serve;
    std::cout << "\n=== Retry storm: " << storm_clients << " clients x "
              << storm_writes << " writes through a seeded duplicate/reset"
              << " schedule, request-id dedup on vs off ===\n\n";
    abp::TextTable storm({"dedup", "logical", "ok", "deliveries", "appends",
                          "dup-suppressed", "phantom", "p50 ms", "p99 ms"});
    json << "  \"retry_storm\": [\n";
    for (int pass = 0; pass < 2; ++pass) {
      const bool dedup = pass == 0;
      RouterOptions router_options;
      router_options.dedup = dedup;
      SimCluster cluster(3, 3, deployments, workers, max_batch, probe_ms,
                         log_retain, router_options);
      std::map<std::string, std::uint64_t> base_versions;
      for (const std::string& name : cluster.replicator->names()) {
        base_versions[name] = cluster.replicator->version(name);
      }

      std::atomic<std::uint64_t> deliveries{0};
      std::atomic<std::uint64_t> ok_calls{0};
      std::mutex mu;
      abp::Histogram call_us = abp::Histogram::latency_us();
      std::vector<std::thread> clients;
      for (std::size_t c = 0; c < storm_clients; ++c) {
        clients.emplace_back([&, c] {
          // Each client owns a transport whose faulted side is the frame
          // pipe to the router — duplicates re-deliver the same write
          // frame, resets force the client to retry with the same id.
          auto exchange = [&](std::string frame) {
            serve::FrameDecoder decoder;
            decoder.feed(frame);
            std::optional<std::string> payload = decoder.next();
            ++deliveries;
            auto done = std::make_shared<std::promise<std::string>>();
            cluster.router->submit(std::move(*payload),
                                   [done](std::string reply) {
                                     done->set_value(std::move(reply));
                                   });
            return serve::encode_frame(done->get_future().get());
          };
          serve::FaultTransport::Options fault_options;
          fault_options.script = serve::make_retry_storm_script(
              256, 0xBEEF + 31 * c + static_cast<std::uint64_t>(pass));
          serve::FaultTransport transport(exchange, fault_options);
          serve::RetryPolicy policy;
          policy.max_attempts = 12;
          policy.base_backoff_ms = 0.1;
          policy.max_backoff_ms = 0.5;
          serve::RetryingClient client(
              [&transport] { return serve::borrow_transport(transport); },
              policy);
          client.set_sleeper([](double) {});
          std::vector<double> latencies;
          latencies.reserve(storm_writes);
          for (std::size_t i = 0; i < storm_writes; ++i) {
            const std::uint64_t seq = c * storm_writes + i;
            const double sent_at = steady_now_s();
            const serve::CallResult result =
                client.call(add_beacon_request(seq, deployments));
            latencies.push_back((steady_now_s() - sent_at) * 1e6);
            if (result.ok && result.response.status == serve::Status::kOk) {
              ++ok_calls;
            }
          }
          std::lock_guard<std::mutex> lock(mu);
          for (double us : latencies) call_us.add(us);
        });
      }
      for (std::thread& t : clients) t.join();

      std::uint64_t appends = 0;
      for (const std::string& name : cluster.replicator->names()) {
        appends += cluster.replicator->version(name) - base_versions[name];
      }
      const std::uint64_t logical = storm_clients * storm_writes;
      const std::uint64_t suppressed = cluster.metrics.write_dedup_hits();
      const std::uint64_t phantom = appends > ok_calls ? appends - ok_calls
                                                       : 0;
      storm.add_row({dedup ? "on" : "off", std::to_string(logical),
                     std::to_string(ok_calls.load()),
                     std::to_string(deliveries.load()),
                     std::to_string(appends), std::to_string(suppressed),
                     std::to_string(phantom),
                     abp::TextTable::fmt(call_us.p50() / 1e3, 2),
                     abp::TextTable::fmt(call_us.p99() / 1e3, 2)});
      if (dedup && appends > logical) {
        healthy = false;
        std::cout << "EXACTLY-ONCE FAILURE: dedup on, " << appends
                  << " appends for " << logical << " logical writes\n";
      }
      if (dedup && suppressed == 0) {
        healthy = false;
        std::cout << "STORM TOO CALM: no duplicate was ever suppressed\n";
      }
      json << "    {\"dedup\": " << (dedup ? "true" : "false")
           << ", \"logical_writes\": " << logical
           << ", \"ok\": " << ok_calls.load()
           << ", \"deliveries\": " << deliveries.load()
           << ", \"appends\": " << appends
           << ", \"dup_suppressed\": " << suppressed
           << ", \"phantom_appends\": " << phantom
           << ", \"p50_ms\": " << call_us.p50() / 1e3
           << ", \"p99_ms\": " << call_us.p99() / 1e3 << "}"
           << (pass == 0 ? "," : "") << "\n";
    }
    json << "  ]\n";
    storm.print(std::cout);
    std::cout << "\nReading: the storm re-delivers and re-tries the same"
                 " logical writes; with dedup on the index answers every"
                 " duplicate from the original ack (phantom = 0), with dedup"
                 " off each re-delivery appends a phantom beacon.\n";
  }

  json << "}\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
    std::cout << "\nwrote bench JSON to " << json_path << "\n";
  }
  return healthy ? 0 : 1;
}
