/// bench_ablation_distributed — centralized vs distributed density control
/// (§6: "the beacon nodes themselves … decide whether to turn themselves
/// on"). The greedy controller uses a global error map; the distributed
/// protocol uses only local neighbour counts. How much localization
/// quality does decentralization cost, and how many beacons does each
/// leave active?
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "eval/config.h"
#include "field/generators.h"
#include "placement/density_control.h"
#include "placement/distributed_scheduler.h"
#include "radio/noise_model.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 5);
  const std::uint64_t seed = flags.get_u64("seed", 20010421);
  flags.check_unused();

  abp::PaperParams params;
  params.step = 2.0;  // evaluation lattice (greedy path stays affordable)

  std::cout << "=== Ablation: greedy (global map) vs distributed (local "
               "neighbour counts) density control ===\n"
            << trials << " fields/cell, ideal propagation\n\n";

  abp::TextTable table({"deployed", "controller", "active after",
                        "mean LE before (m)", "mean LE after (m)",
                        "rounds/evals"});
  for (const std::size_t n : {140u, 240u}) {
    for (const bool distributed : {false, true}) {
      abp::RunningStats active, before_le, after_le, work;
      for (int t = 0; t < trials; ++t) {
        const std::uint64_t trial_seed = abp::derive_seed(seed, n, t);
        const abp::PerBeaconNoiseModel model(
            params.range, 0.0, abp::derive_seed(trial_seed, 2));
        abp::BeaconField field(params.bounds(), model.max_range());
        abp::Rng rng(abp::derive_seed(trial_seed, 1));
        scatter_uniform(field, n, rng);
        abp::ErrorMap map(params.lattice());
        map.compute(field, model);
        before_le.add(map.mean());

        abp::Rng ctrl_rng(abp::derive_seed(trial_seed, 3));
        if (distributed) {
          const auto r =
              distributed_density_control(field, {}, ctrl_rng);
          map.compute(field, model);
          active.add(static_cast<double>(r.final_active));
          work.add(static_cast<double>(r.rounds));
        } else {
          abp::DensityControlConfig config;
          config.tolerance_factor = 1.10;
          config.candidate_sample = 24;
          const auto r = greedy_density_control(field, model, map, config,
                                                ctrl_rng);
          active.add(static_cast<double>(r.final_active));
          work.add(static_cast<double>(r.deactivated.size() * 24));
        }
        after_le.add(map.mean());
      }
      table.add_row({std::to_string(n),
                     distributed ? "distributed" : "greedy",
                     abp::TextTable::fmt(active.mean(), 1),
                     abp::TextTable::fmt(before_le.mean(), 2),
                     abp::TextTable::fmt(after_le.mean(), 2),
                     abp::TextTable::fmt(work.mean(), 0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpect: greedy keeps fewer beacons for the same error "
               "budget (global knowledge); distributed converges in a few "
               "rounds with zero instrumentation of the terrain, at a "
               "modest error premium — the trade the paper's §6 sketch "
               "anticipates.\n";
  return 0;
}
