/// bench_micro — google-benchmark microbenchmarks backing the §3.2
/// complexity claims (Random O(1), Max O(PT), Grid O(NG·PG)) and the
/// performance-critical primitives of the evaluation pipeline.
#include <benchmark/benchmark.h>

#include "eval/config.h"
#include "eval/trial.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

struct World {
  AABB bounds = AABB::square(100.0);
  BeaconField field;
  PerBeaconNoiseModel model;
  Lattice2D lattice;
  ErrorMap map;
  SurveyData survey;

  World(std::size_t beacons, double noise, double step = 1.0)
      : field(bounds, 15.0 * (1.0 + noise)),
        model(15.0, noise, 99),
        lattice(bounds, step),
        map(lattice),
        survey(lattice) {
    Rng rng(42);
    scatter_uniform(field, beacons, rng);
    map.compute(field, model);
    survey = SurveyData::from_error_map(map);
  }

  PlacementContext ctx() {
    PlacementContext c = PlacementContext::basic(survey, bounds, 15.0);
    c.field = &field;
    c.model = &model;
    c.truth = &map;
    return c;
  }
};

// ---- §3.2 complexity claims ------------------------------------------

void BM_ProposeRandom(benchmark::State& state) {
  World world(60, 0.0);
  const RandomPlacement alg;
  Rng rng(1);
  auto ctx = world.ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.propose(ctx, rng));
  }
}
BENCHMARK(BM_ProposeRandom);  // O(1): independent of PT and NG

void BM_ProposeMax(benchmark::State& state) {
  // Vary PT via the lattice step: 2 m → 2601 points, 1 → 10201, 0.5 → 40401.
  const double step = static_cast<double>(state.range(0)) / 100.0;
  World world(60, 0.0, step);
  const MaxPlacement alg;
  Rng rng(1);
  auto ctx = world.ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.propose(ctx, rng));
  }
  state.counters["PT"] = static_cast<double>(world.lattice.size());
}
BENCHMARK(BM_ProposeMax)->Arg(200)->Arg(100)->Arg(50);  // O(PT)

void BM_ProposeGrid(benchmark::State& state) {
  // Vary NG at fixed PT: O(NG · PG).
  World world(60, 0.0);
  const GridPlacement alg(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  auto ctx = world.ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.propose(ctx, rng));
  }
  state.counters["NG"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ProposeGrid)->Arg(100)->Arg(400)->Arg(1600);

// ---- evaluation pipeline primitives ----------------------------------

void BM_ErrorMapFullCompute(benchmark::State& state) {
  const auto beacons = static_cast<std::size_t>(state.range(0));
  World world(beacons, 0.3);
  for (auto _ : state) {
    world.map.compute(world.field, world.model);
  }
  state.counters["beacons"] = static_cast<double>(beacons);
}
BENCHMARK(BM_ErrorMapFullCompute)->Arg(20)->Arg(120)->Arg(240);

void BM_ErrorMapIncrementalAdd(benchmark::State& state) {
  World world(static_cast<std::size_t>(state.range(0)), 0.3);
  Rng rng(7);
  for (auto _ : state) {
    const Vec2 pos{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const BeaconId id = world.field.add(pos);
    world.map.apply_addition(world.field, world.model, *world.field.get(id));
    world.field.remove(id);
    world.map.apply_removal(world.field, world.model, pos);
  }
}
BENCHMARK(BM_ErrorMapIncrementalAdd)->Arg(20)->Arg(120)->Arg(240);

void BM_MeanIfAdded(benchmark::State& state) {
  World world(60, 0.3);
  Rng rng(9);
  for (auto _ : state) {
    const Vec2 pos{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    benchmark::DoNotOptimize(
        world.map.mean_if_added(world.field, world.model, pos));
  }
}
BENCHMARK(BM_MeanIfAdded);

void BM_SurveyBatch(benchmark::State& state) {
  // The fused batch kernel on its own: 120 beacons, Noise=0.3, varying
  // batch size, one arm per benchmark instance (0=scalar, 1=generic,
  // 2=avx2). Throughput counter is points per second.
  const auto backend = static_cast<SurveyBackend>(state.range(0));
  const auto batch_size = static_cast<std::size_t>(state.range(1));
  if (backend == SurveyBackend::kAvx2 && !SurveyKernel::avx2_supported()) {
    state.SkipWithError("AVX2 not available");
    return;
  }
  World world(120, 0.3);
  const SurveyKernel kernel(world.field, world.model);
  SurveyBatch batch;
  batch.reserve(batch_size);
  // Row-major lattice prefix: the spatially coherent batches every real
  // caller (error map sweeps, survey tours, serve requests) produces.
  world.lattice.for_each([&](std::size_t flat, Vec2 p) {
    if (flat < batch_size) batch.push(p);
  });
  for (auto _ : state) {
    kernel.evaluate(batch, backend);
    benchmark::DoNotOptimize(batch.sum_x.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
  switch (backend) {
    case SurveyBackend::kScalar: state.SetLabel("scalar"); break;
    case SurveyBackend::kGeneric: state.SetLabel("generic"); break;
    case SurveyBackend::kAvx2: state.SetLabel("avx2"); break;
  }
}
BENCHMARK(BM_SurveyBatch)
    ->ArgsProduct({{0, 1, 2}, {64, 1024, 10201}});

void BM_ConnectivityQuery(benchmark::State& state) {
  const double noise = static_cast<double>(state.range(0)) / 10.0;
  World world(120, noise);
  Rng rng(11);
  for (auto _ : state) {
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    std::size_t n = 0;
    world.field.query_disk(p, world.model.max_range(), [&](const Beacon& b) {
      n += world.model.connected(b, p);
    });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_ConnectivityQuery)->Arg(0)->Arg(5);  // ideal vs Noise=0.5

void BM_SpatialHashVsBrute(benchmark::State& state) {
  const bool use_index = state.range(0) != 0;
  World world(240, 0.0);
  Rng rng(13);
  std::vector<Beacon> all;
  world.field.for_each_active([&](const Beacon& b) { all.push_back(b); });
  for (auto _ : state) {
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    std::size_t n = 0;
    if (use_index) {
      world.field.query_disk(p, 15.0, [&](const Beacon&) { ++n; });
    } else {
      for (const Beacon& b : all) {
        if (distance_sq(b.pos, p) <= 225.0) ++n;
      }
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetLabel(use_index ? "spatial-hash" : "brute-force");
}
BENCHMARK(BM_SpatialHashVsBrute)->Arg(1)->Arg(0);

void BM_FullTrial(benchmark::State& state) {
  // One end-to-end §4.1 trial with the three paper algorithms.
  static const RandomPlacement random;
  static const MaxPlacement max;
  static const GridPlacement grid;
  static const PlacementAlgorithm* const algs[] = {&random, &max, &grid};
  const PaperParams params;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_trial(params, static_cast<std::size_t>(state.range(0)), 0.3,
                  {algs, 3}, ++seed));
  }
}
BENCHMARK(BM_FullTrial)->Arg(20)->Arg(120);

}  // namespace
}  // namespace abp

BENCHMARK_MAIN();
