/// bench_serve_throughput — queries/second of the localization query
/// service across the two knobs that matter for serving: the coalescing
/// batch size B and the worker count.
///
/// Each iteration pushes a window of pipelined localize requests through
/// the loopback transport (full wire codec: format → frame → decode →
/// parse → dispatch → format → frame), so the numbers include codec cost,
/// not just the localization pass. `items_processed` is requests, so
/// benchmark output reports queries/sec directly — the batched
/// configurations must beat batch=1 because B queued queries share one
/// deployment-lock acquisition and one spatial-index walk.
#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "field/generators.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace abp::serve {
namespace {

constexpr std::size_t kBeacons = 60;
constexpr std::size_t kWindow = 256;  ///< pipelined requests per iteration

BeaconField make_field() {
  BeaconField field(AABB::square(100.0), 15.0);
  Rng rng(42);
  scatter_uniform(field, kBeacons, rng);
  return field;
}

ServiceConfig bench_config() {
  ServiceConfig config;
  config.lattice_step = 2.0;
  return config;
}

Request localize_request(std::uint64_t seq) {
  Request request;
  request.seq = seq;
  request.endpoint = Endpoint::kLocalize;
  // Spread probes deterministically over the terrain.
  const double t = static_cast<double>(seq % kWindow) / kWindow;
  request.points = {{100.0 * t, 100.0 * (1.0 - t)}};
  return request;
}

/// Pipelined load through the loopback transport. With workers == 0 the
/// queue is drained by pump() after the window is submitted (pure batching
/// effect, no thread handoff); with workers > 0 the pool drains it
/// concurrently and we block until every reply lands.
void BM_ServeThroughput(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));

  LocalizationService service(bench_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = workers;
  options.max_batch = batch;
  Server server(service, options);
  LoopbackTransport transport(server);

  std::mutex mu;
  std::condition_variable cv;
  std::size_t outstanding = 0;
  std::uint64_t seq = 0;

  for (auto _ : state) {
    {
      std::lock_guard<std::mutex> lock(mu);
      outstanding = kWindow;
    }
    for (std::size_t i = 0; i < kWindow; ++i) {
      transport.send_async(localize_request(seq++), [&](std::string) {
        std::lock_guard<std::mutex> lock(mu);
        if (--outstanding == 0) cv.notify_one();
      });
    }
    if (workers == 0) server.pump();
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWindow));
  state.counters["batches"] = static_cast<double>(server.batches_executed());
  state.counters["reqs_per_batch"] =
      server.batches_executed() == 0
          ? 0.0
          : static_cast<double>(server.requests_served()) /
                static_cast<double>(server.batches_executed());
}

// The grid the issue asks for: batch size 1, 8, 64 × workers 1, 4 — plus
// the manual-mode row (workers 0) that isolates batching from threading.
BENCHMARK(BM_ServeThroughput)
    ->ArgNames({"batch", "workers"})
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({64, 1})
    ->Args({1, 4})
    ->Args({8, 4})
    ->Args({64, 4})
    ->UseRealTime();

}  // namespace
}  // namespace abp::serve

BENCHMARK_MAIN();
