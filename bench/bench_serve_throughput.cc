/// bench_serve_throughput — queries/second of the localization query
/// service across the two knobs that matter for serving: the coalescing
/// batch size B and the worker count.
///
/// Each iteration pushes a window of pipelined localize requests through
/// the loopback transport (full wire codec: format → frame → decode →
/// parse → dispatch → format → frame), so the numbers include codec cost,
/// not just the localization pass. `items_processed` is requests, so
/// benchmark output reports queries/sec directly — the batched
/// configurations must beat batch=1 because B queued queries share one
/// deployment-lock acquisition and one spatial-index walk.
/// `BM_TcpConnectionScaling` extends the grid over real TCP: N pipelined
/// connections (window 4 each) against both server transports, showing
/// where thread-per-connection saturates its pool and the epoll event loop
/// keeps scaling. All load generation goes through the `ClientTransport`
/// interface (`send_async`/`flush`) — no transport-specific casts.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "field/generators.h"
#include "serve/server.h"
#include "serve/server_transport.h"
#include "serve/tcp_transport.h"
#include "serve/transport.h"

namespace abp::serve {
namespace {

constexpr std::size_t kBeacons = 60;
constexpr std::size_t kWindow = 256;  ///< pipelined requests per iteration

BeaconField make_field() {
  BeaconField field(AABB::square(100.0), 15.0);
  Rng rng(42);
  scatter_uniform(field, kBeacons, rng);
  return field;
}

ServiceConfig bench_config() {
  ServiceConfig config;
  config.lattice_step = 2.0;
  return config;
}

Request localize_request(std::uint64_t seq) {
  Request request;
  request.seq = seq;
  request.endpoint = Endpoint::kLocalize;
  // Spread probes deterministically over the terrain.
  const double t = static_cast<double>(seq % kWindow) / kWindow;
  request.points = {{100.0 * t, 100.0 * (1.0 - t)}};
  return request;
}

/// Pipelined load through the loopback transport. With workers == 0 the
/// queue is drained by pump() after the window is submitted (pure batching
/// effect, no thread handoff); with workers > 0 the pool drains it
/// concurrently and we block until every reply lands.
void BM_ServeThroughput(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));

  LocalizationService service(bench_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = workers;
  options.max_batch = batch;
  Server server(service, options);
  LoopbackTransport loopback(server);
  // Drive through the interface: flush() blocks until every pipelined
  // reply has landed (and pumps first when the server is manual-mode).
  ClientTransport& transport = loopback;

  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kWindow; ++i) {
      transport.send_async(localize_request(seq++), [](std::string) {});
    }
    transport.flush();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWindow));
  state.counters["batches"] = static_cast<double>(server.batches_executed());
  state.counters["reqs_per_batch"] =
      server.batches_executed() == 0
          ? 0.0
          : static_cast<double>(server.requests_served()) /
                static_cast<double>(server.batches_executed());
}

// The grid the issue asks for: batch size 1, 8, 64 × workers 1, 4 — plus
// the manual-mode row (workers 0) that isolates batching from threading.
BENCHMARK(BM_ServeThroughput)
    ->ArgNames({"batch", "workers"})
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({64, 1})
    ->Args({1, 4})
    ->Args({8, 4})
    ->Args({64, 4})
    ->UseRealTime();

/// Point throughput for multi-point requests: the kLocalize handler
/// resolves a whole request in one fused survey-kernel call, so
/// points-per-second should rise with points-per-request far past what the
/// per-request codec allows. `items_processed` is points, not requests.
void BM_ServePointThroughput(benchmark::State& state) {
  const auto points = static_cast<std::size_t>(state.range(0));

  LocalizationService service(bench_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = 0;
  options.max_batch = 8;
  Server server(service, options);
  LoopbackTransport loopback(server);
  ClientTransport& transport = loopback;

  constexpr std::size_t kRequests = 64;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kRequests; ++i) {
      Request request;
      request.seq = seq++;
      request.endpoint = Endpoint::kLocalize;
      request.points.reserve(points);
      // A coherent probe track across the terrain, like a survey tour.
      const double y = 100.0 * static_cast<double>(i) / kRequests;
      for (std::size_t k = 0; k < points; ++k) {
        request.points.push_back(
            {100.0 * static_cast<double>(k) / static_cast<double>(points), y});
      }
      transport.send_async(request, [](std::string) {});
    }
    transport.flush();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRequests * points));
}

BENCHMARK(BM_ServePointThroughput)
    ->ArgNames({"points"})
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->UseRealTime();

/// Real-TCP scaling: `conns` pipelined client connections, window 4 each,
/// against the threaded (arg 0) or epoll (arg 1) server transport. Goodput
/// per iteration is conns × 4 requests, all flushed through the
/// `ClientTransport` interface.
void BM_TcpConnectionScaling(benchmark::State& state) {
  const TransportKind kind =
      state.range(0) == 0 ? TransportKind::kThreaded : TransportKind::kEpoll;
  const auto conns = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kConnWindow = 4;

  LocalizationService service(bench_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = 4;
  options.max_batch = 16;
  Server server(service, options);
  TransportOptions transport_options;
  transport_options.conn_workers = conns;  // threaded: one thread per conn
  transport_options.event_shards = 2;
  const std::unique_ptr<ServerTransport> transport =
      make_server_transport(kind, server, transport_options);
  transport->start();

  std::vector<std::unique_ptr<TcpClientTransport>> clients;
  clients.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    clients.push_back(std::make_unique<TcpClientTransport>(
        "127.0.0.1", transport->port(), 10.0));
  }

  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (const std::unique_ptr<TcpClientTransport>& client : clients) {
      for (std::size_t k = 0; k < kConnWindow; ++k) {
        client->send_async(localize_request(seq++), [](std::string) {});
      }
    }
    for (const std::unique_ptr<TcpClientTransport>& client : clients) {
      client->flush();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(conns * kConnWindow));
  state.counters["accepted"] =
      static_cast<double>(transport->connections_accepted());
  clients.clear();
  transport->stop();
  server.shutdown();
}

BENCHMARK(BM_TcpConnectionScaling)
    ->ArgNames({"epoll", "conns"})
    ->Args({0, 8})
    ->Args({0, 64})
    ->Args({1, 8})
    ->Args({1, 64})
    ->UseRealTime();

}  // namespace
}  // namespace abp::serve

BENCHMARK_MAIN();
