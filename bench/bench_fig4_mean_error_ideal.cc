/// bench_fig4_mean_error_ideal — Figure 4: mean localization error vs
/// beacon density under idealized radio propagation, plus the saturation
/// analysis quoted in §4.2 ("falls sharply … until ~0.01 beacons/m², and
/// saturates at around 4m (0.3R)").
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  auto opt = abp::bench::parse(argc, argv, /*default_trials=*/100);
  abp::bench::banner("Figure 4: mean localization error vs beacon density "
                     "(Ideal)", opt);

  const abp::SweepOutcome out = run_fig4(opt.fig);
  print_mean_error_table(std::cout, out);
  std::cout << "\n";
  print_saturation(std::cout, out, 0);
  std::cout << "Paper: sharp fall until ~0.0100 /m^2 (~7 beacons per "
               "coverage area), floor ~4 m (0.27 R).\n";
  abp::bench::emit_outputs(opt, out, "Figure 4: mean LE vs density (Ideal)");
  return 0;
}
