/// bench_ablation_localizers — the estimator study behind §2.2 footnote 3
/// and the §6 locus discussion: the paper's centroid-of-beacons estimate
/// "summarizes the locus"; how much accuracy does the summary give up
/// compared to the full-locus-information estimate (centroid of the
/// feasible region), and where does multilateration sit?
///
/// For each density, the same sample clients are localized with
///  * centroid (§2.2, the paper's estimator),
///  * region centroid (full locus information; falls back to centroid
///    where the noisy signature admits no feasible region),
///  * least-squares multilateration with 5% ranging noise.
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "eval/config.h"
#include "field/generators.h"
#include "loc/localizer.h"
#include "loc/multilateration.h"
#include "loc/region_localizer.h"
#include "radio/noise_model.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 8);
  const int clients = flags.get_int("clients", 150);
  const double noise = flags.get_double("noise", 0.0);
  const std::uint64_t seed = flags.get_u64("seed", 20010421);
  flags.check_unused();

  const abp::PaperParams params;
  std::cout << "=== Ablation: centroid vs full-locus-region vs "
               "multilateration (Noise=" << noise << ", " << trials
            << " fields x " << clients << " clients) ===\n\n";

  abp::TextTable table({"beacons", "centroid LE (m)", "region LE (m)",
                        "multilat LE (m)", "region used (%)"});
  for (const std::size_t n : {20u, 40u, 80u, 160u}) {
    abp::RunningStats cent, reg, multi, used;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t trial_seed = abp::derive_seed(seed, n, t);
      const abp::PerBeaconNoiseModel model(params.range, noise,
                                           abp::derive_seed(trial_seed, 2));
      abp::BeaconField field(params.bounds(), model.max_range());
      abp::Rng rng(abp::derive_seed(trial_seed, 1));
      scatter_uniform(field, n, rng);

      const abp::CentroidLocalizer centroid(field, model);
      const abp::RegionLocalizer region(field, model, 1.0);
      const abp::RangingModel ranging(model, 0.05,
                                      abp::derive_seed(trial_seed, 5));
      const abp::MultilaterationLocalizer lateration(field, ranging);

      abp::Rng client_rng(abp::derive_seed(trial_seed, 4));
      for (int c = 0; c < clients; ++c) {
        const abp::Vec2 p{client_rng.uniform(0.0, 100.0),
                          client_rng.uniform(0.0, 100.0)};
        cent.add(centroid.error(p));
        const auto r = region.localize(p);
        reg.add(distance(r.estimate, p));
        used.add(r.used_region ? 100.0 : 0.0);
        multi.add(lateration.error(p));
      }
    }
    table.add_row({std::to_string(n), abp::TextTable::fmt(cent.mean(), 2),
                   abp::TextTable::fmt(reg.mean(), 2),
                   abp::TextTable::fmt(multi.mean(), 2),
                   abp::TextTable::fmt(used.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpect region <= centroid at every density under ideal "
               "propagation (the region centroid is the uniform-prior "
               "optimum); with --noise 0.5 the feasible region often "
               "vanishes and the advantage narrows — the paper's warning "
               "that locus information is unreliable under real "
               "propagation. Multilateration wins once most clients hear "
               ">= 3 beacons.\n";
  return 0;
}
