/// bench_ablation_multirobot — why parallel surveying matters: under
/// time-varying propagation (§6) a survey is stale by the time it
/// finishes. One robot sweeps the Table-1 terrain in ~6 hours (1 m/s,
/// 2 s per measurement); k robots divide the makespan by ~k. The world
/// drifts while they drive, so the placement decided from the finished
/// survey is evaluated against the world at the survey's completion time —
/// fewer robots ⇒ staler survey ⇒ less realized gain.
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "eval/config.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "placement/grid_placement.h"
#include "radio/noise_model.h"
#include "radio/time_varying.h"
#include "robot/multi.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 10);
  const std::size_t beacons =
      static_cast<std::size_t>(flags.get_int("beacons", 30));
  const double amplitude = flags.get_double("amplitude", 0.2);
  const double period = flags.get_double("period", 14400.0);  // 4 h drift
  const std::uint64_t seed = flags.get_u64("seed", 20010421);
  flags.check_unused();

  const abp::PaperParams params;
  const abp::SurveyCostModel cost{.speed = 1.0, .measurement_time = 2.0};

  std::cout << "=== Ablation: multi-robot survey vs staleness (drift "
               "amplitude " << amplitude << ", period " << period / 3600.0
            << " h, " << trials << " fields/cell) ===\n\n";

  abp::TextTable table({"robots", "makespan (h)", "robot-hours",
                        "realized grid gain (m)", "vs fresh (%)"});
  for (const std::size_t robots : {1u, 2u, 4u, 8u}) {
    abp::RunningStats makespan, robot_hours, gain, fresh_gain;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t trial_seed = abp::derive_seed(seed, robots, t);
      const abp::PerBeaconNoiseModel base(params.range, 0.0,
                                          abp::derive_seed(trial_seed, 2));
      abp::TimeVaryingModel model(base, amplitude, period,
                                  abp::derive_seed(trial_seed, 5));
      abp::BeaconField field(params.bounds(), model.max_range());
      abp::Rng rng(abp::derive_seed(trial_seed, 1));
      scatter_uniform(field, beacons, rng);

      // Survey snapshot at t=0 (stride 2 keeps the run brisk).
      model.set_time(0.0);
      const abp::Surveyor surveyor(field, model);
      abp::Rng tour_rng(abp::derive_seed(trial_seed, 3));
      const auto result =
          multi_robot_survey(surveyor, params.lattice(), robots, 2, tour_rng);
      const double finish = result.makespan(cost);
      makespan.add(finish / 3600.0);
      robot_hours.add(result.total_time(cost) / 3600.0);

      // Placement decided from the survey, realized in the drifted world.
      const abp::GridPlacement grid;
      auto ctx = abp::PlacementContext::basic(result.survey, params.bounds(),
                                              params.range);
      abp::Rng alg_rng(abp::derive_seed(trial_seed, 4));
      const abp::Vec2 pos =
          params.bounds().clamp(grid.propose(ctx, alg_rng));

      model.set_time(finish);
      abp::ErrorMap now(params.lattice());
      now.compute(field, model);
      gain.add(now.mean() - now.mean_if_added(field, model, pos));

      // Reference: the gain the same decision realizes with zero staleness.
      model.set_time(0.0);
      abp::ErrorMap at0(params.lattice());
      at0.compute(field, model);
      fresh_gain.add(at0.mean() - at0.mean_if_added(field, model, pos));
    }
    table.add_row(
        {std::to_string(robots), abp::TextTable::fmt(makespan.mean(), 2),
         abp::TextTable::fmt(robot_hours.mean(), 2),
         abp::TextTable::fmt(gain.mean(), 3) + " ±" +
             abp::TextTable::fmt(gain.ci95(), 3),
         abp::TextTable::fmt(
             fresh_gain.mean() > 0
                 ? 100.0 * gain.mean() / fresh_gain.mean()
                 : 0.0,
             0)});
  }
  table.print(std::cout);
  std::cout << "\nExpect makespan ≈ 1/robots at constant robot-hours, and "
               "the realized gain to recover toward the fresh-survey gain "
               "as the survey finishes before the world drifts.\n";
  return 0;
}
