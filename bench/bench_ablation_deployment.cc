/// bench_ablation_deployment — the §1 "terrain commonality" motivation,
/// quantified: "if the number of air-dropped beacons were doubled, the
/// same situation would persist … the beacon placement needs to adapt".
///
/// For three deployment distributions (uniform §4.1, clustered, airdrop
/// over a hill) we report the baseline mean LE and each algorithm's
/// improvement. Biased deployments localize much worse at equal density,
/// and the measured algorithms' absolute advantage over Random grows
/// several-fold — adaptivity matters most when deployment is
/// systematically skewed (see the printed observations for the full
/// reading).
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"

int main(int argc, char** argv) {
  auto opt = abp::bench::parse(argc, argv, /*default_trials=*/30);
  abp::bench::banner("Ablation: deployment distribution (Ideal, 40 beacons)",
                     opt);

  static const abp::RandomPlacement random;
  static const abp::MaxPlacement max;
  static const abp::GridPlacement grid;
  const abp::PlacementAlgorithm* algs[] = {&random, &max, &grid};

  const struct {
    const char* label;
    abp::Deployment deployment;
  } rows[] = {
      {"uniform (paper §4.1)", abp::Deployment::kUniform},
      {"clustered (4 clusters)", abp::Deployment::kClustered},
      {"airdrop over hill (§1)", abp::Deployment::kAirdropHill},
  };

  abp::TextTable table({"deployment", "mean LE (m)", "uncovered (%)",
                        "random gain", "max gain", "grid gain",
                        "grid / random"});
  for (const auto& row : rows) {
    abp::SweepConfig config = make_sweep_config(opt.fig, {0.0});
    config.beacon_counts = {40};
    config.deployment = row.deployment;
    const abp::SweepOutcome out = run_sweep(config, {algs, 3});
    const abp::CellResult& cell = out.cells[0][0];
    const double rg = cell.improvement_mean[0].mean;
    const double gg = cell.improvement_mean[2].mean;
    table.add_row({row.label,
                   abp::TextTable::fmt(cell.mean_error.mean, 2),
                   abp::TextTable::fmt(100.0 * cell.uncovered.mean, 1),
                   abp::TextTable::fmt(rg, 3),
                   abp::TextTable::fmt(cell.improvement_mean[1].mean, 3),
                   abp::TextTable::fmt(gg, 3),
                   abp::TextTable::fmt(rg > 0 ? gg / rg : 0.0, 1)});
  }
  table.print(std::cout);
  std::cout
      << "\nObservations: at equal density, biased deployments localize "
         "far worse (the §1 point — uniform\ndensification cannot fix a "
         "systematic bias), and Grid's ABSOLUTE advantage over Random "
         "grows\nseveral-fold. Random's own gain also rises on biased "
         "fields (a blind drop more often lands in\nempty space), so the "
         "grid/random RATIO narrows even as the absolute gap widens.\n";
  return 0;
}
