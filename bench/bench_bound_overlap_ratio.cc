/// bench_bound_overlap_ratio — §2.2's analytic error bound, measured:
/// under uniform beacon placement with separation d and range overlap
/// ratio R/d = 1, the maximum localization error is bounded by 0.5 d;
/// the paper states the factor "falls off considerably (to 0.25 d) when
/// the range overlap ratio increases (to 4)".
///
/// The bound is an interior (infinite-grid) property: a probe point closer
/// than R to the deployment edge sees a truncated, asymmetric beacon set
/// and its centroid is biased outward. We therefore size the beacon grid
/// per ratio so the probe window stays at least R + d away from every
/// edge, which is what the paper's analysis assumes.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "field/generators.h"
#include "loc/localizer.h"
#include "radio/propagation.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const double probe_step = flags.get_double("probe-step", 0.5);
  flags.check_unused();

  const double d = 10.0;
  const double window = 20.0;  // probe window edge length
  std::cout << "=== Section 2.2: centroid error bound vs range overlap "
               "ratio ===\n"
            << "uniform beacon grid, d=" << d << " m, " << window << "x"
            << window << " m interior probe window, step " << probe_step
            << " m, field sized so the window is >= R+d from every edge\n\n";

  abp::TextTable table({"R/d", "R (m)", "grid", "max LE (m)", "max LE / d",
                        "mean LE (m)", "paper reference"});
  for (const double ratio : {0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0}) {
    const double r = ratio * d;
    const double margin = r + d;
    const auto n = static_cast<std::size_t>(
        std::ceil((window + 2.0 * margin) / d));
    const double side = static_cast<double>(n) * d;
    abp::BeaconField field(abp::AABB::square(side));
    abp::place_grid(field, n, n);
    const abp::IdealDiskModel model(r);
    const abp::CentroidLocalizer loc(field, model);

    const double lo = (side - window) / 2.0;
    const double hi = (side + window) / 2.0;
    double max_err = 0.0, sum = 0.0;
    std::size_t count = 0;
    for (double x = lo; x <= hi; x += probe_step) {
      for (double y = lo; y <= hi; y += probe_step) {
        const double e = loc.error({x, y});
        max_err = std::max(max_err, e);
        sum += e;
        ++count;
      }
    }
    std::string reference =
        ratio <= 1.0 ? "<= 0.5 d" : (ratio >= 4.0 ? "~0.25 d (paper)" : "-");
    table.add_row({abp::TextTable::fmt(ratio, 2), abp::TextTable::fmt(r, 1),
                   std::to_string(n) + "x" + std::to_string(n),
                   abp::TextTable::fmt(max_err, 3),
                   abp::TextTable::fmt(max_err / d, 3),
                   abp::TextTable::fmt(sum / static_cast<double>(count), 3),
                   reference});
  }
  table.print(std::cout);
  std::cout << "\nExpect max LE <= 0.5 d at R/d = 1 (near-tight) and a "
               "decrease toward ~0.25 d as the overlap ratio grows.\n";
  return 0;
}
