/// bench_des_selfinterference — §1's motivation for limiting beacon
/// density: "at very high densities, the probability of collisions among
/// signals transmitted by the beacons increases. Therefore even if we had
/// unlimited numbers of beacons, we would like to limit their use."
///
/// The packet-level DES runs the §2.2 beaconing protocol (period T,
/// listening window t, threshold CMthresh) over an ALOHA channel and
/// reports, per deployment density: packet loss rate, how many in-range
/// beacons fail CMthresh because of collisions, and the resulting mean
/// localization error at sample clients — demonstrating that beyond the
/// saturation density, extra beacons *hurt* at the protocol level.
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "des/beaconing.h"
#include "field/generators.h"
#include "loc/connectivity.h"
#include "radio/propagation.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const int clients = flags.get_int("clients", 12);
  const int fields = flags.get_int("fields", 5);
  const double packet_time = flags.get_double("packet-time", 0.02);
  const std::uint64_t seed = flags.get_u64("seed", 20010421);
  flags.check_unused();

  abp::BeaconingConfig cfg;
  cfg.period = 1.0;
  cfg.listen_time = 25.0;
  cfg.packet_time = packet_time;
  cfg.cm_thresh = 0.75;
  cfg.jitter = 0.3;

  std::cout << "=== Self-interference at high beacon density (DES) ===\n"
            << "T=" << cfg.period << " s, t=" << cfg.listen_time
            << " s, packet=" << cfg.packet_time * 1e3
            << " ms, CMthresh=" << cfg.cm_thresh << ", " << fields
            << " fields x " << clients << " clients\n\n";

  const abp::AABB bounds = abp::AABB::square(100.0);
  const abp::IdealDiskModel model(15.0);

  abp::TextTable table({"beacons", "density", "MAC", "loss rate", "in-range",
                        "connected", "lost to CMthresh", "dropped",
                        "mean LE (m)"});
  for (const std::size_t n : {20u, 60u, 120u, 240u, 480u, 960u}) {
    for (const abp::MacMode mac : {abp::MacMode::kAloha, abp::MacMode::kCsma}) {
      cfg.mac = mac;
      abp::RunningStats loss, in_range, connected, le, dropped;
      for (int f = 0; f < fields; ++f) {
        abp::BeaconField field(bounds);
        abp::Rng field_rng(seed + static_cast<std::uint64_t>(f));
        scatter_uniform(field, n, field_rng);
        // Separate streams so both MAC rows see identical clients.
        abp::Rng client_rng(abp::derive_seed(seed, 1, f));
        abp::Rng rng(abp::derive_seed(seed, 2, f));
        for (int c = 0; c < clients; ++c) {
          const abp::Vec2 p{client_rng.uniform(10.0, 90.0),
                            client_rng.uniform(10.0, 90.0)};
          const auto outcome = simulate_listen(field, model, p, cfg, rng);
          loss.add(outcome.loss_rate);
          in_range.add(static_cast<double>(outcome.detail.size()));
          connected.add(static_cast<double>(outcome.connected.size()));
          dropped.add(static_cast<double>(outcome.dropped_packets));
          le.add(distance(outcome.estimate, p));
        }
      }
      table.add_row({std::to_string(n),
                     abp::TextTable::fmt(static_cast<double>(n) / 1e4, 4),
                     mac == abp::MacMode::kAloha ? "ALOHA" : "CSMA",
                     abp::TextTable::fmt(loss.mean(), 3),
                     abp::TextTable::fmt(in_range.mean(), 1),
                     abp::TextTable::fmt(connected.mean(), 1),
                     abp::TextTable::fmt(in_range.mean() - connected.mean(), 1),
                     abp::TextTable::fmt(dropped.mean(), 1),
                     abp::TextTable::fmt(le.mean(), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpect ALOHA loss to grow with density until, past "
               "saturation, in-range beacons fail CMthresh and mean LE "
               "DEGRADES — the §1 self-interference argument. Carrier "
               "sensing (CSMA) defers instead of colliding and holds "
               "connectivity together far longer, at the cost of dropped "
               "packets under true saturation.\n";
  return 0;
}
