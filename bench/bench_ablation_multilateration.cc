/// bench_ablation_multilateration — §6 future work: "an interesting point
/// of comparison are beacon placement algorithms for multilateration based
/// localization approaches, as the error characteristics of the two are
/// significantly different. In the former … error is governed by beacon
/// placement and density, whereas in the latter … by the geometry."
///
/// For each density: proximity (centroid) error vs least-squares
/// multilateration error on the same fields, the fraction of the terrain
/// with a usable (≥3 beacons, finite GDOP) constellation, and the effect
/// of adding 3 beacons with Grid (error-mass driven) vs GDOP placement
/// (geometry driven) on both localizers.
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "eval/config.h"
#include "field/generators.h"
#include "loc/connectivity.h"
#include "loc/error_map.h"
#include "loc/localizer.h"
#include "loc/multilateration.h"
#include "placement/gdop_placement.h"
#include "placement/grid_placement.h"
#include "radio/noise_model.h"

namespace {

struct Metrics {
  double proximity = 0.0;
  double multilateration = 0.0;
  double usable_fraction = 0.0;
};

Metrics measure(const abp::BeaconField& field,
                const abp::PerBeaconNoiseModel& model,
                const abp::RangingModel& ranging,
                const abp::Lattice2D& lattice) {
  const abp::CentroidLocalizer prox(field, model);
  const abp::MultilaterationLocalizer multi(field, ranging);
  abp::RunningStats p_err, m_err;
  std::size_t usable = 0, total = 0;
  for (std::size_t j = 0; j < lattice.ny(); j += 4) {
    for (std::size_t i = 0; i < lattice.nx(); i += 4) {
      const abp::Vec2 pt = lattice.point(i, j);
      p_err.add(prox.error(pt));
      m_err.add(multi.error(pt));
      const auto beacons = connected_beacons(field, model, pt);
      if (gdop(pt, beacons) < abp::kGdopSingular) ++usable;
      ++total;
    }
  }
  return {p_err.mean(), m_err.mean(),
          static_cast<double>(usable) / static_cast<double>(total)};
}

}  // namespace

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 10);
  const double ranging_sigma = flags.get_double("ranging-sigma", 0.05);
  const std::uint64_t seed = flags.get_u64("seed", 20010421);
  flags.check_unused();

  const abp::PaperParams params;
  const abp::Lattice2D lattice = params.lattice();

  std::cout << "=== Ablation: proximity vs multilateration; Grid vs GDOP "
               "placement ===\n"
            << "ranging noise " << 100.0 * ranging_sigma << "%, Noise=0.1, "
            << trials << " fields/cell\n\n";

  abp::TextTable base({"beacons", "proximity LE (m)", "multilat LE (m)",
                       "usable geometry (%)"});
  for (const std::size_t n : {20u, 40u, 80u, 160u}) {
    abp::RunningStats p, m, u;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t trial_seed = abp::derive_seed(seed, n, t);
      const abp::PerBeaconNoiseModel model(params.range, 0.1,
                                           abp::derive_seed(trial_seed, 2));
      const abp::RangingModel ranging(model, ranging_sigma,
                                      abp::derive_seed(trial_seed, 5));
      abp::BeaconField field(params.bounds(), model.max_range());
      abp::Rng rng(abp::derive_seed(trial_seed, 1));
      scatter_uniform(field, n, rng);
      const Metrics metrics = measure(field, model, ranging, lattice);
      p.add(metrics.proximity);
      m.add(metrics.multilateration);
      u.add(metrics.usable_fraction);
    }
    base.add_row({std::to_string(n), abp::TextTable::fmt(p.mean(), 2),
                  abp::TextTable::fmt(m.mean(), 2),
                  abp::TextTable::fmt(100.0 * u.mean(), 1)});
  }
  base.print(std::cout);

  std::cout << "\nPlacement recast (+3 beacons at 40-beacon density):\n";
  abp::TextTable recast({"placement", "proximity LE (m)", "multilat LE (m)",
                         "usable geometry (%)"});
  const abp::GridPlacement grid_alg;
  const abp::GdopPlacement gdop_alg(2);
  const struct {
    const char* label;
    const abp::PlacementAlgorithm* alg;
  } rows[] = {{"none", nullptr}, {"grid", &grid_alg}, {"gdop", &gdop_alg}};
  for (const auto& row : rows) {
    abp::RunningStats p, m, u;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t trial_seed = abp::derive_seed(seed, 999, t);
      const abp::PerBeaconNoiseModel model(params.range, 0.1,
                                           abp::derive_seed(trial_seed, 2));
      const abp::RangingModel ranging(model, ranging_sigma,
                                      abp::derive_seed(trial_seed, 5));
      abp::BeaconField field(params.bounds(), model.max_range());
      abp::Rng rng(abp::derive_seed(trial_seed, 1));
      scatter_uniform(field, 40, rng);
      if (row.alg != nullptr) {
        abp::ErrorMap map(lattice);
        map.compute(field, model);
        abp::Rng alg_rng(abp::derive_seed(trial_seed, 3));
        for (int k = 0; k < 3; ++k) {
          const abp::SurveyData survey = abp::SurveyData::from_error_map(map);
          abp::PlacementContext ctx = abp::PlacementContext::basic(
              survey, params.bounds(), params.range);
          ctx.field = &field;
          ctx.model = &model;
          ctx.truth = &map;
          const abp::Vec2 pos =
              params.bounds().clamp(row.alg->propose(ctx, alg_rng));
          const abp::BeaconId id = field.add(pos);
          map.apply_addition(field, model, *field.get(id));
        }
      }
      const Metrics metrics = measure(field, model, ranging, lattice);
      p.add(metrics.proximity);
      m.add(metrics.multilateration);
      u.add(metrics.usable_fraction);
    }
    recast.add_row({row.label, abp::TextTable::fmt(p.mean(), 2),
                    abp::TextTable::fmt(m.mean(), 2),
                    abp::TextTable::fmt(100.0 * u.mean(), 1)});
  }
  recast.print(std::cout);
  std::cout
      << "\nObservations: multilateration beats proximity wherever geometry "
         "is usable (first table), and the\ngap widens with density — the "
         "paper's point that the two approaches have different error\n"
         "characteristics. In the recast, Grid helps BOTH localizers "
         "(error-mass placement also fills\ncoverage holes, which is what "
         "multilateration needs most at this density), while GDOP "
         "placement's\nsingle-worst-point repair is too local to move "
         "field-wide averages — recasting for multilateration\nneeds an "
         "area-aggregated geometry objective, the Grid idea applied to "
         "GDOP.\n";
  return 0;
}
