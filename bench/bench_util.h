/// \file bench_util.h
/// \brief Shared CLI/progress plumbing for the figure-reproduction benches.
///
/// Every bench accepts:
///   --trials N    fields per (density, noise) cell (paper scale: 1000)
///   --stride K    keep every K-th paper beacon count (1 = all 23)
///   --seed S      master seed
///   --threads T   worker threads (0 = hardware)
///   --csv PATH    also write the full outcome as CSV
#pragma once

#include <unistd.h>

#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "eval/figures.h"
#include "eval/gnuplot.h"
#include "eval/report.h"

namespace abp::bench {

struct Options {
  FigureOptions fig;
  std::string csv;
  std::string gnuplot;  ///< basename for .dat/.gp export (empty = off)
};

inline Options parse(int argc, char** argv, std::size_t default_trials,
                     std::size_t default_stride = 1) {
  const Flags flags(argc, argv);
  Options opt;
  opt.fig.trials = static_cast<std::size_t>(
      flags.get_int("trials", static_cast<int>(default_trials)));
  opt.fig.count_stride = static_cast<std::size_t>(
      flags.get_int("stride", static_cast<int>(default_stride)));
  opt.fig.seed = flags.get_u64("seed", 20010421);
  opt.fig.threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  opt.csv = flags.get_string("csv", "");
  opt.gnuplot = flags.get_string("gnuplot", "");
  flags.check_unused();
  // Live progress only when a human is watching; redirected runs (e.g.
  // `for b in build/bench/*; do $b; done | tee …`) stay clean.
  if (isatty(STDERR_FILENO)) {
    opt.fig.progress = [](std::size_t done, std::size_t total) {
      std::cerr << "\r  cells " << done << "/" << total << std::flush;
      if (done == total) std::cerr << "\n";
    };
  }
  return opt;
}

inline void banner(const std::string& title, const Options& opt) {
  std::cout << "=== " << title << " ===\n"
            << "trials/cell=" << opt.fig.trials
            << " (paper: 1000), seed=" << opt.fig.seed
            << ", density stride=" << opt.fig.count_stride << "\n\n";
}

/// Optional CSV and gnuplot exports, shared by all figure benches.
inline void emit_outputs(const Options& opt, const SweepOutcome& outcome,
                         const std::string& title) {
  maybe_write_csv(opt.csv, outcome);
  if (!opt.gnuplot.empty()) export_gnuplot(opt.gnuplot, title, outcome);
}

}  // namespace abp::bench
