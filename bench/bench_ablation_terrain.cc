/// bench_ablation_terrain — §6 future work: "further simulations with a
/// more sophisticated terrain map and propagation model … to analyze the
/// effects of terrain commonality".
///
/// Fields of 40 beacons are evaluated on flat terrain and on fractal
/// (diamond–square) terrains of growing ruggedness, with line-of-sight
/// attenuation wrapped around the radio model. Terrain blocking shrinks
/// effective coverage and creates correlated error regions (shadows), so
/// baseline error rises with ruggedness — and the measured algorithms'
/// advantage over Random grows, because shadows are exactly the
/// predictable-but-unmeasurable-a-priori structure adaptive placement
/// exists for ("it is virtually impossible to preconfigure to such terrain
/// and propagation uncertainties", §1).
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "eval/config.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"
#include "radio/noise_model.h"
#include "radio/terrain_model.h"
#include "terrain/heightmap.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 15);
  const std::size_t beacons =
      static_cast<std::size_t>(flags.get_int("beacons", 40));
  const std::uint64_t seed = flags.get_u64("seed", 20010421);
  flags.check_unused();

  const abp::PaperParams params;
  std::cout << "=== Ablation: terrain commonality (fractal terrain + LOS "
               "attenuation, " << beacons << " beacons, " << trials
            << " fields/cell) ===\n\n";

  const abp::RandomPlacement random;
  const abp::MaxPlacement max;
  const abp::GridPlacement grid;

  abp::TextTable table({"terrain", "mean LE (m)", "uncovered (%)",
                        "random gain", "max gain", "grid gain"});
  // amplitude 0 = flat reference; larger = more rugged.
  for (const double amplitude : {0.0, 10.0, 20.0, 35.0}) {
    abp::RunningStats le, uncov, rg, mg, gg;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t trial_seed =
          abp::derive_seed(seed, static_cast<std::uint64_t>(amplitude), t);
      const abp::HeightmapTerrain terrain = abp::HeightmapTerrain::fractal(
          params.bounds(), abp::derive_seed(trial_seed, 6), 6, amplitude,
          0.55, /*obstruction_softness=*/1.5);
      const abp::PerBeaconNoiseModel base(params.range, 0.0,
                                          abp::derive_seed(trial_seed, 2));
      const abp::TerrainAwareModel model(base, terrain);

      abp::BeaconField field(params.bounds(), model.max_range());
      abp::Rng rng(abp::derive_seed(trial_seed, 1));
      scatter_uniform(field, beacons, rng);
      abp::ErrorMap map(params.lattice());
      map.compute(field, model);
      le.add(map.mean());
      uncov.add(100.0 * map.uncovered_fraction());

      const abp::SurveyData survey = abp::SurveyData::from_error_map(map);
      auto ctx = abp::PlacementContext::basic(survey, params.bounds(),
                                              params.range);
      ctx.field = &field;
      ctx.model = &model;
      ctx.truth = &map;
      abp::Rng alg_rng(abp::derive_seed(trial_seed, 4));
      const double before = map.mean();
      rg.add(before - map.mean_if_added(
                          field, model,
                          params.bounds().clamp(random.propose(ctx, alg_rng))));
      mg.add(before - map.mean_if_added(
                          field, model,
                          params.bounds().clamp(max.propose(ctx, alg_rng))));
      gg.add(before - map.mean_if_added(
                          field, model,
                          params.bounds().clamp(grid.propose(ctx, alg_rng))));
    }
    table.add_row(
        {amplitude == 0.0 ? "flat (reference)"
                          : "fractal, amp " + abp::TextTable::fmt(amplitude, 0) + " m",
         abp::TextTable::fmt(le.mean(), 2), abp::TextTable::fmt(uncov.mean(), 1),
         abp::TextTable::fmt(rg.mean(), 3), abp::TextTable::fmt(mg.mean(), 3),
         abp::TextTable::fmt(gg.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nExpect baseline error and uncovered area to grow with "
               "ruggedness, and the measured algorithms (Max, Grid) to "
               "widen their lead over Random — terrain shadows are exactly "
               "what empirical adaptation discovers.\n";
  return 0;
}
