/// bench_ablation_locus — §6 future work: "adding new beacons to break
/// down the loci with the largest area into smaller loci. To some extent,
/// the Grid algorithm incorporates this strategy."
///
/// Compares the locus-area algorithms (largest region overall / largest
/// covered region) against Grid and Max across densities, and reports how
/// much each placement reduces the largest locus area.
#include <iostream>

#include "bench_util.h"
#include "placement/grid_placement.h"
#include "placement/coverage_placement.h"
#include "placement/locus_placement.h"
#include "placement/max_placement.h"

int main(int argc, char** argv) {
  auto opt = abp::bench::parse(argc, argv, /*default_trials=*/20);
  abp::bench::banner("Ablation: locus-area placement vs Grid/Max (Ideal)",
                     opt);

  abp::SweepConfig config = make_sweep_config(opt.fig, {0.0});
  config.beacon_counts = {20, 30, 40, 60, 100};

  static const abp::MaxPlacement max;
  static const abp::GridPlacement grid;
  static const abp::LocusPlacement locus(false);
  static const abp::LocusPlacement locus_covered(true);
  static const abp::CoveragePlacement coverage(2);
  const abp::PlacementAlgorithm* algs[] = {&max, &grid, &locus,
                                           &locus_covered, &coverage};

  const abp::SweepOutcome out = run_sweep(config, {algs, 5}, opt.fig.progress);
  print_improvement_tables(std::cout, out, 0);
  std::cout
      << "Expect 'locus' (targets the largest region, usually the uncovered "
         "exterior at low density)\nto behave like a coverage-maximizer — "
         "competitive with Grid at the lowest densities — while\n"
         "'locus-covered' refines granularity and matters more near "
         "saturation. Grid remains the best\nall-round choice, confirming "
         "the paper's remark that it already captures much of the locus\n"
         "strategy.\n";
  abp::bench::emit_outputs(opt, out, "Ablation: locus placement");
  return 0;
}
