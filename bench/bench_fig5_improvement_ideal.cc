/// bench_fig5_improvement_ideal — Figure 5: improvement in mean and median
/// localization error vs beacon density for the Random, Max and Grid
/// algorithms under idealized propagation.
///
/// Expected shape (§4.2): at low density (≤0.005 /m²) Grid ≥ 2× Max and
/// clearly above Random; at moderate density (0.008–0.02) Max edges Grid;
/// above ~0.02 all three converge to ≈0. Median improvements are roughly a
/// quarter of the mean improvements (the algorithms fix hot spots).
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  auto opt = abp::bench::parse(argc, argv, /*default_trials=*/100);
  abp::bench::banner(
      "Figure 5: improvement in mean/median error vs density (Ideal)", opt);

  const abp::SweepOutcome out = run_fig5(opt.fig);
  print_improvement_tables(std::cout, out, 0);
  std::cout << "Paper: Grid >= 2x Max at low density; Max slightly ahead at "
               "0.008-0.02 /m^2; all ~0 beyond 0.02 /m^2.\n";
  abp::bench::emit_outputs(opt, out, "Figure 5: improvement vs density (Ideal)");
  return 0;
}
