/// bench_fig7_random_noise — Figure 7: improvement in mean and median
/// error with the Random algorithm, across densities and noise levels.
///
/// Paper: "the gains in both metrics with the Random algorithm are
/// somewhat unchanged with noise … because noise is not an input in the
/// Random algorithm, which does not make any measurements."
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  auto opt = abp::bench::parse(argc, argv, /*default_trials=*/50);
  abp::bench::banner("Figure 7: Random algorithm vs density and noise", opt);

  const abp::SweepOutcome out = run_fig_alg_noise("random", opt.fig);
  print_algorithm_noise_tables(std::cout, out, 0);
  std::cout << "Paper: columns should be statistically indistinguishable — "
               "Random takes no measurements.\n";
  abp::bench::emit_outputs(opt, out, "Figure 7: Random vs density and noise");
  return 0;
}
