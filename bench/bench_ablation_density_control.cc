/// bench_ablation_density_control — the §5/§6 self-scheduling discussion
/// (AFECA-style): beyond the saturation density extra *active* beacons buy
/// almost nothing, so beacons should "decide whether to turn themselves
/// on". The greedy controller deactivates beacons while mean LE stays
/// within a tolerance of the all-active baseline; the remaining active
/// density should land near the saturation density of Figure 4,
/// independent of how over-provisioned the deployment was.
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "eval/config.h"
#include "field/generators.h"
#include "placement/density_control.h"
#include "radio/noise_model.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const int trials = flags.get_int("trials", 5);
  const double tolerance = flags.get_double("tolerance", 1.10);
  const std::uint64_t seed = flags.get_u64("seed", 20010421);
  flags.check_unused();

  abp::PaperParams params;
  params.step = 2.0;  // coarser evaluation lattice keeps the greedy cheap
  std::cout << "=== Ablation: density control (greedy beacon deactivation, "
               "tolerance " << tolerance << ", " << trials
            << " fields/cell) ===\n\n";

  abp::TextTable table({"deployed", "deployed dens.", "active after",
                        "active dens.", "mean LE before (m)",
                        "mean LE after (m)"});
  for (const std::size_t n : {100u, 140u, 200u, 240u}) {
    abp::RunningStats active_after, before_le, after_le;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t trial_seed = abp::derive_seed(seed, n, t);
      const abp::PerBeaconNoiseModel model(params.range, 0.0,
                                           abp::derive_seed(trial_seed, 2));
      abp::BeaconField field(params.bounds(), model.max_range());
      abp::Rng rng(abp::derive_seed(trial_seed, 1));
      scatter_uniform(field, n, rng);
      abp::ErrorMap map(params.lattice());
      map.compute(field, model);

      abp::DensityControlConfig config;
      config.tolerance_factor = tolerance;
      config.candidate_sample = 24;
      abp::Rng ctrl_rng(abp::derive_seed(trial_seed, 3));
      const auto r =
          greedy_density_control(field, model, map, config, ctrl_rng);
      active_after.add(static_cast<double>(r.final_active));
      before_le.add(r.baseline_mean);
      after_le.add(r.final_mean);
    }
    table.add_row(
        {std::to_string(n), abp::TextTable::fmt(n / 1e4, 4),
         abp::TextTable::fmt(active_after.mean(), 1),
         abp::TextTable::fmt(active_after.mean() / 1e4, 4),
         abp::TextTable::fmt(before_le.mean(), 2),
         abp::TextTable::fmt(after_le.mean(), 2)});
  }
  table.print(std::cout);
  std::cout
      << "\nExpect 'active dens.' to collapse far below the deployed "
         "density while mean LE stays within the\ntolerance. The selected "
         "subset typically lands at 0.004-0.005 /m^2 — BELOW the ~0.010 "
         "/m^2 Fig 4\nsaturation density of *random* deployments — because "
         "greedy selection keeps only well-placed\nbeacons: good placement "
         "is worth a 2-3x density saving, the paper's core thesis from the "
         "energy\nside.\n";
  return 0;
}
