/// bench_fig8_max_noise — Figure 8: improvement in mean and median error
/// with the Max algorithm, across densities and noise levels.
///
/// Paper: noise makes moderate densities somewhat more improvable for Max
/// (less so than Grid); median gains are mostly unchanged.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  auto opt = abp::bench::parse(argc, argv, /*default_trials=*/50);
  abp::bench::banner("Figure 8: Max algorithm vs density and noise", opt);

  const abp::SweepOutcome out = run_fig_alg_noise("max", opt.fig);
  print_algorithm_noise_tables(std::cout, out, 0);
  abp::bench::emit_outputs(opt, out, "Figure 8: Max vs density and noise");
  return 0;
}
