/// bench_overload — goodput and tail latency of the query service under
/// overload, with and without admission control.
///
/// Method: first calibrate the server's closed-loop capacity (windowed
/// pipelined load, all replies awaited), then drive paced open-loop load at
/// 0.5×, 1× and 2× of that capacity for a fixed measurement window. Each
/// load point runs twice: admission control off (unbounded queue) and on
/// (`--max-queue`). Reported per cell: offered and achieved rate, goodput
/// (ok replies/sec), client-observed p50/p99 latency, and the shed
/// counters.
///
/// The claim this bench demonstrates: without admission control, overload
/// (2× capacity) grows the queue without bound, so every request pays an
/// ever-increasing queueing delay — goodput may look fine but p99 explodes
/// and keeps growing with the window length. With a bounded queue the
/// excess is shed immediately as `overloaded` (cheap, retryable), goodput
/// stays at capacity and p99 stays near the 1× value.
#include <chrono>
#include <condition_variable>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "field/generators.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace abp::serve {
namespace {

constexpr std::size_t kBeacons = 60;

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

BeaconField make_field() {
  BeaconField field(AABB::square(100.0), 15.0);
  Rng rng(42);
  scatter_uniform(field, kBeacons, rng);
  return field;
}

ServiceConfig bench_config() {
  ServiceConfig config;
  config.lattice_step = 2.0;
  return config;
}

Request localize_request(std::uint64_t seq, std::uint32_t deadline_ms) {
  Request request;
  request.seq = seq;
  request.endpoint = Endpoint::kLocalize;
  const double t = static_cast<double>(seq % 257) / 257.0;
  request.points = {{100.0 * t, 100.0 * (1.0 - t)}};
  request.deadline_ms = deadline_ms;
  return request;
}

struct RunConfig {
  std::size_t workers = 2;
  std::size_t max_batch = 16;
  std::size_t max_queue = 0;  ///< 0 = admission control off
  std::uint32_t deadline_ms = 0;
};

/// Closed-loop calibration: windows of pipelined requests, every reply
/// awaited before the next window. The resulting rate is the service
/// capacity the open-loop cells are scaled against.
double calibrate_capacity_qps(double probe_s, const RunConfig& config) {
  LocalizationService service(bench_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = config.workers;
  options.max_batch = config.max_batch;
  Server server(service, options);
  LoopbackTransport transport(server);

  constexpr std::size_t kWindow = 256;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t outstanding = 0;
  std::uint64_t seq = 0;
  std::uint64_t done = 0;

  const double start = steady_now_s();
  while (steady_now_s() - start < probe_s) {
    {
      std::lock_guard<std::mutex> lock(mu);
      outstanding = kWindow;
    }
    for (std::size_t i = 0; i < kWindow; ++i) {
      transport.send_async(localize_request(seq++, 0), [&](std::string) {
        std::lock_guard<std::mutex> lock(mu);
        if (--outstanding == 0) cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
    done += kWindow;
  }
  const double elapsed = steady_now_s() - start;
  server.shutdown();
  return static_cast<double>(done) / elapsed;
}

struct CellResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t other = 0;
  double elapsed_s = 0.0;
  Histogram latency_us = Histogram::latency_us();
};

/// One open-loop cell: paced submission at `rate_qps` for `duration_s`,
/// then a full drain so every submission is answered and accounted.
CellResult run_cell(double rate_qps, double duration_s,
                    const RunConfig& config) {
  LocalizationService service(bench_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = config.workers;
  options.max_batch = config.max_batch;
  options.max_queue = config.max_queue;
  Server server(service, options);
  LoopbackTransport transport(server);

  CellResult result;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t outstanding = 0;

  const double interval_s = 1.0 / rate_qps;
  const double start = steady_now_s();
  double next_send = start;
  std::uint64_t seq = 0;
  while (steady_now_s() - start < duration_s) {
    const double now = steady_now_s();
    if (now < next_send) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(next_send - now));
      continue;
    }
    next_send += interval_s;
    const double sent_at = steady_now_s();
    {
      std::lock_guard<std::mutex> lock(mu);
      ++outstanding;
    }
    ++result.sent;
    transport.send_async(
        localize_request(seq++, config.deadline_ms),
        [&result, &mu, &cv, &outstanding, sent_at](std::string frame) {
          const double latency_us = (steady_now_s() - sent_at) * 1e6;
          // The async reply arrives as an encoded frame; unwrap it.
          FrameDecoder decoder;
          decoder.feed(frame);
          const std::optional<std::string> payload = decoder.next();
          const std::optional<Response> response =
              payload ? parse_response(*payload) : std::nullopt;
          std::lock_guard<std::mutex> lock(mu);
          result.latency_us.add(latency_us);
          if (!response) {
            ++result.other;
          } else if (response->status == Status::kOk) {
            ++result.ok;
          } else if (response->status == Status::kOverloaded) {
            ++result.overloaded;
          } else if (response->status == Status::kDeadlineExceeded) {
            ++result.deadline_exceeded;
          } else {
            ++result.other;
          }
          if (--outstanding == 0) cv.notify_one();
        });
  }
  {
    // Drain: every in-flight submission is answered before the clock stops,
    // so goodput includes the queue built up during the window.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
  result.elapsed_s = steady_now_s() - start;
  server.shutdown();
  return result;
}

}  // namespace
}  // namespace abp::serve

int main(int argc, char** argv) {
  using namespace abp::serve;
  const abp::Flags flags(argc, argv);
  RunConfig config;
  config.workers = static_cast<std::size_t>(flags.get_int("workers", 2));
  config.max_batch = static_cast<std::size_t>(flags.get_int("batch", 16));
  // Generous relative to max_batch: sleep-based pacing is bursty, and a
  // queue bound close to the batch size would shed on pacing jitter alone.
  config.max_queue = static_cast<std::size_t>(flags.get_int("max-queue", 256));
  config.deadline_ms =
      static_cast<std::uint32_t>(flags.get_int("deadline-ms", 0));
  const double probe_s = flags.get_double("probe-s", 1.0);
  const double load_s = flags.get_double("load-s", 2.0);
  flags.check_unused();

  std::cout << "=== Overload: goodput and tail latency vs admission control"
            << " ===\n"
            << "workers=" << config.workers << " batch=" << config.max_batch
            << " max-queue=" << config.max_queue
            << " deadline-ms=" << config.deadline_ms
            << " probe-s=" << probe_s << " load-s=" << load_s << "\n\n";

  const double capacity = calibrate_capacity_qps(probe_s, config);
  std::cout << "calibrated capacity: " << static_cast<std::uint64_t>(capacity)
            << " q/s (closed loop)\n\n";

  abp::TextTable table({"load", "admission", "offered q/s", "goodput q/s",
                        "p50 ms", "p99 ms", "overloaded", "deadline"});
  for (const double mult : {0.5, 1.0, 2.0}) {
    for (const bool admission : {false, true}) {
      RunConfig cell_config = config;
      if (!admission) cell_config.max_queue = 0;
      const double rate = mult * capacity;
      const CellResult r = run_cell(rate, load_s, cell_config);
      table.add_row(
          {abp::TextTable::fmt(mult, 1) + "x", admission ? "on" : "off",
           std::to_string(static_cast<std::uint64_t>(rate)),
           std::to_string(static_cast<std::uint64_t>(
               static_cast<double>(r.ok) / r.elapsed_s)),
           abp::TextTable::fmt(r.latency_us.p50() / 1e3, 2),
           abp::TextTable::fmt(r.latency_us.p99() / 1e3, 2),
           std::to_string(r.overloaded),
           std::to_string(r.deadline_exceeded)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: at 2x load the unbounded queue converts overload"
               " into unbounded queueing delay (p99 grows with the window);"
               " with admission control the excess is shed as retryable"
               " `overloaded` and p99 stays near the 1x value.\n";
  return 0;
}
