/// bench_overload — goodput and tail latency of the query service under
/// overload, with and without admission control.
///
/// Method: first calibrate the server's closed-loop capacity (windowed
/// pipelined load, all replies awaited), then drive paced open-loop load at
/// 0.5×, 1× and 2× of that capacity for a fixed measurement window. Each
/// load point runs twice: admission control off (unbounded queue) and on
/// (`--max-queue`). Reported per cell: offered and achieved rate, goodput
/// (ok replies/sec), client-observed p50/p99 latency, and the shed
/// counters.
///
/// The claim this bench demonstrates: without admission control, overload
/// (2× capacity) grows the queue without bound, so every request pays an
/// ever-increasing queueing delay — goodput may look fine but p99 explodes
/// and keeps growing with the window length. With a bounded queue the
/// excess is shed immediately as `overloaded` (cheap, retryable), goodput
/// stays at capacity and p99 stays near the 1× value.
/// A second section sweeps concurrent-connection counts (64/256/1024 by
/// default) over real TCP through both server transports: thread-per-
/// connection (bounded by its worker pool) and the epoll event loop. Each
/// cell drives closed-loop windowed pipelining per connection, reports
/// goodput and client latency, and reconciles the admission ledger
/// (`submitted == completed + shed`) plus the transport's open-connection
/// gauge (must be 0 after stop) — the same invariants the chaos suite
/// asserts, here checked at scale. The process fd limit is raised to the
/// hard limit up front; sweep points that still do not fit are skipped
/// with a note, never silently clamped. Each sweep cell also samples the
/// process's open-fd count (`/proc/self/fd`) throughout the run and
/// reports the high-water mark, so the claim "epoll really held N
/// concurrent sockets" is auditable from the numbers (and from the
/// machine-readable dump written by `--json PATH`) instead of taken on
/// faith from the connection count requested.
#include <dirent.h>
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "field/generators.h"
#include "serve/server.h"
#include "serve/server_transport.h"
#include "serve/tcp_transport.h"
#include "serve/transport.h"

namespace abp::serve {
namespace {

constexpr std::size_t kBeacons = 60;

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

BeaconField make_field() {
  BeaconField field(AABB::square(100.0), 15.0);
  Rng rng(42);
  scatter_uniform(field, kBeacons, rng);
  return field;
}

ServiceConfig bench_config() {
  ServiceConfig config;
  config.lattice_step = 2.0;
  return config;
}

Request localize_request(std::uint64_t seq, std::uint32_t deadline_ms) {
  Request request;
  request.seq = seq;
  request.endpoint = Endpoint::kLocalize;
  const double t = static_cast<double>(seq % 257) / 257.0;
  request.points = {{100.0 * t, 100.0 * (1.0 - t)}};
  request.deadline_ms = deadline_ms;
  return request;
}

struct RunConfig {
  std::size_t workers = 2;
  std::size_t max_batch = 16;
  std::size_t max_queue = 0;  ///< 0 = admission control off
  std::uint32_t deadline_ms = 0;
};

/// Closed-loop calibration: windows of pipelined requests, every reply
/// awaited before the next window. The resulting rate is the service
/// capacity the open-loop cells are scaled against.
double calibrate_capacity_qps(double probe_s, const RunConfig& config) {
  LocalizationService service(bench_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = config.workers;
  options.max_batch = config.max_batch;
  Server server(service, options);
  LoopbackTransport transport(server);

  constexpr std::size_t kWindow = 256;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t outstanding = 0;
  std::uint64_t seq = 0;
  std::uint64_t done = 0;

  const double start = steady_now_s();
  while (steady_now_s() - start < probe_s) {
    {
      std::lock_guard<std::mutex> lock(mu);
      outstanding = kWindow;
    }
    for (std::size_t i = 0; i < kWindow; ++i) {
      transport.send_async(localize_request(seq++, 0), [&](std::string) {
        std::lock_guard<std::mutex> lock(mu);
        if (--outstanding == 0) cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
    done += kWindow;
  }
  const double elapsed = steady_now_s() - start;
  server.shutdown();
  return static_cast<double>(done) / elapsed;
}

struct CellResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t other = 0;
  double elapsed_s = 0.0;
  Histogram latency_us = Histogram::latency_us();
};

/// One open-loop cell: paced submission at `rate_qps` for `duration_s`,
/// then a full drain so every submission is answered and accounted.
CellResult run_cell(double rate_qps, double duration_s,
                    const RunConfig& config) {
  LocalizationService service(bench_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = config.workers;
  options.max_batch = config.max_batch;
  options.max_queue = config.max_queue;
  Server server(service, options);
  LoopbackTransport transport(server);

  CellResult result;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t outstanding = 0;

  const double interval_s = 1.0 / rate_qps;
  const double start = steady_now_s();
  double next_send = start;
  std::uint64_t seq = 0;
  while (steady_now_s() - start < duration_s) {
    const double now = steady_now_s();
    if (now < next_send) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(next_send - now));
      continue;
    }
    next_send += interval_s;
    const double sent_at = steady_now_s();
    {
      std::lock_guard<std::mutex> lock(mu);
      ++outstanding;
    }
    ++result.sent;
    transport.send_async(
        localize_request(seq++, config.deadline_ms),
        [&result, &mu, &cv, &outstanding, sent_at](std::string frame) {
          const double latency_us = (steady_now_s() - sent_at) * 1e6;
          // The async reply arrives as an encoded frame; unwrap it.
          FrameDecoder decoder;
          decoder.feed(frame);
          const std::optional<std::string> payload = decoder.next();
          const std::optional<Response> response =
              payload ? parse_response(*payload) : std::nullopt;
          std::lock_guard<std::mutex> lock(mu);
          result.latency_us.add(latency_us);
          if (!response) {
            ++result.other;
          } else if (response->status == Status::kOk) {
            ++result.ok;
          } else if (response->status == Status::kOverloaded) {
            ++result.overloaded;
          } else if (response->status == Status::kDeadlineExceeded) {
            ++result.deadline_exceeded;
          } else {
            ++result.other;
          }
          if (--outstanding == 0) cv.notify_one();
        });
  }
  {
    // Drain: every in-flight submission is answered before the clock stops,
    // so goodput includes the queue built up during the window.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
  result.elapsed_s = steady_now_s() - start;
  server.shutdown();
  return result;
}

// ---- connection-scaling sweep ------------------------------------------

/// Raise RLIMIT_NOFILE to the hard limit; returns the resulting soft limit.
std::size_t raise_fd_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
    ::getrlimit(RLIMIT_NOFILE, &lim);
  }
  return static_cast<std::size_t>(lim.rlim_cur);
}

/// Number of open file descriptors right now, counted from /proc/self/fd.
/// (The directory handle itself is open during the count; subtract it.)
std::size_t count_open_fds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (!dir) return 0;
  std::size_t count = 0;
  while (const dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count > 0 ? count - 1 : 0;
}

/// Samples the process fd count on a background thread for the lifetime of
/// the object and keeps the high-water mark. A sampled (not event-driven)
/// maximum can only *under*-report, so a high-water ≥ the connection count
/// is honest evidence the sockets were really concurrently open.
class FdHighWaterSampler {
 public:
  FdHighWaterSampler()
      : high_water_(count_open_fds()), sampler_([this] {
          while (!stop_.load(std::memory_order_acquire)) {
            const std::size_t now = count_open_fds();
            std::size_t seen = high_water_.load(std::memory_order_relaxed);
            while (now > seen &&
                   !high_water_.compare_exchange_weak(seen, now)) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        }) {}

  ~FdHighWaterSampler() {
    if (sampler_.joinable()) stop_and_join();
  }

  /// Final high-water mark; stops sampling.
  std::size_t finish() {
    stop_and_join();
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  void stop_and_join() {
    stop_.store(true, std::memory_order_release);
    sampler_.join();
  }

  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> high_water_;
  std::thread sampler_;
};

std::vector<std::size_t> parse_conn_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    out.push_back(static_cast<std::size_t>(std::stoul(item)));
  }
  return out;
}

struct ScaleResult {
  std::uint64_t ok = 0;
  std::uint64_t non_ok = 0;
  std::uint64_t dead_conns = 0;
  double elapsed_s = 0.0;
  Histogram latency_us = Histogram::latency_us();
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  bool reconciled = false;
  std::size_t open_after_stop = 0;
  std::size_t fd_high_water = 0;  ///< process-wide open-fd peak for the cell
};

struct WorkerStats {
  std::uint64_t ok = 0;
  std::uint64_t non_ok = 0;
  std::uint64_t dead_conns = 0;
  Histogram latency_us = Histogram::latency_us();
};

/// Start barrier: the measurement window opens only after every client
/// thread has finished connecting, so the 1024-connection storm is not
/// billed against goodput.
struct StartGate {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t ready = 0;
  bool go = false;
};

/// One client thread: owns `conns` pipelined connections and round-robins
/// windows of 4 requests over them (closed loop: every window is flushed
/// before the connection's next one). A connection whose flush fails is
/// marked dead and skipped from then on.
void scale_client_worker(std::uint16_t port, std::size_t conns,
                         double duration_s, StartGate& gate,
                         WorkerStats& stats) {
  constexpr std::size_t kConnWindow = 4;
  std::vector<std::unique_ptr<TcpClientTransport>> clients;
  clients.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    try {
      clients.push_back(
          std::make_unique<TcpClientTransport>("127.0.0.1", port, 5.0));
    } catch (const ServeError&) {
      ++stats.dead_conns;
    }
  }
  {
    std::unique_lock<std::mutex> lock(gate.mu);
    ++gate.ready;
    gate.cv.notify_all();
    gate.cv.wait(lock, [&gate] { return gate.go; });
  }
  std::vector<bool> dead(clients.size(), false);
  std::size_t alive = clients.size();
  std::uint64_t seq = 0;
  const double start = steady_now_s();
  // Each round puts a window in flight on EVERY owned connection before
  // collecting any replies, so total concurrency scales with the
  // connection count — the point of the sweep — instead of being fixed at
  // one window per client thread.
  while (alive > 0 && steady_now_s() - start < duration_s) {
    for (std::size_t c = 0; c < clients.size(); ++c) {
      if (dead[c]) continue;
      try {
        for (std::size_t k = 0; k < kConnWindow; ++k) {
          const double sent_at = steady_now_s();
          clients[c]->send_async(
              localize_request(seq++, 0), [&stats, sent_at](std::string frame) {
                stats.latency_us.add((steady_now_s() - sent_at) * 1e6);
                FrameDecoder decoder;
                decoder.feed(frame);
                const std::optional<std::string> payload = decoder.next();
                const std::optional<Response> response =
                    payload ? parse_response(*payload) : std::nullopt;
                if (response && response->status == Status::kOk) {
                  ++stats.ok;
                } else {
                  ++stats.non_ok;
                }
              });
        }
      } catch (const ServeError&) {
        dead[c] = true;
        ++stats.dead_conns;
        --alive;
      }
    }
    for (std::size_t c = 0; c < clients.size(); ++c) {
      if (dead[c]) continue;
      try {
        clients[c]->flush();
      } catch (const ServeError&) {
        dead[c] = true;
        ++stats.dead_conns;
        --alive;
      }
    }
  }
}

ScaleResult run_conn_scaling(TransportKind kind, std::size_t conns,
                             double duration_s, const RunConfig& config) {
  LocalizationService service(bench_config());
  service.add_field("default", make_field());
  Server::Options options;
  options.workers = config.workers;
  options.max_batch = config.max_batch;
  Server server(service, options);
  TransportOptions transport_options;
  transport_options.read_timeout_s = 10.0;
  transport_options.write_timeout_s = 10.0;
  transport_options.conn_workers = conns;  // threaded: one thread per conn
  transport_options.event_shards = 2;
  const std::unique_ptr<ServerTransport> transport =
      make_server_transport(kind, server, transport_options);
  transport->start();
  FdHighWaterSampler fd_sampler;

  const std::size_t threads_n = std::min<std::size_t>(8, conns);
  StartGate gate;
  std::vector<WorkerStats> stats(threads_n);
  std::vector<std::thread> threads;
  threads.reserve(threads_n);
  for (std::size_t t = 0; t < threads_n; ++t) {
    const std::size_t share =
        conns / threads_n + (t < conns % threads_n ? 1 : 0);
    threads.emplace_back([port = transport->port(), share, duration_s, &gate,
                          &stat = stats[t]] {
      scale_client_worker(port, share, duration_s, gate, stat);
    });
  }
  double start = 0.0;
  {
    std::unique_lock<std::mutex> lock(gate.mu);
    gate.cv.wait(lock, [&gate, threads_n] { return gate.ready == threads_n; });
    start = steady_now_s();
    gate.go = true;
    gate.cv.notify_all();
  }
  for (std::thread& thread : threads) thread.join();

  ScaleResult result;
  result.elapsed_s = steady_now_s() - start;
  // Read the peak before teardown closes the sockets.
  result.fd_high_water = fd_sampler.finish();
  transport->stop();
  server.shutdown();
  for (const WorkerStats& s : stats) {
    result.ok += s.ok;
    result.non_ok += s.non_ok;
    result.dead_conns += s.dead_conns;
    result.latency_us.merge(s.latency_us);
  }
  const ServiceMetrics& metrics = service.metrics();
  result.submitted = metrics.submitted();
  result.completed = metrics.completed();
  result.shed = metrics.shed_total();
  result.reconciled = result.submitted == result.completed + result.shed;
  result.open_after_stop = transport->open_connections();
  return result;
}

}  // namespace
}  // namespace abp::serve

int main(int argc, char** argv) {
  using namespace abp::serve;
  const abp::Flags flags(argc, argv);
  RunConfig config;
  config.workers = static_cast<std::size_t>(flags.get_int("workers", 2));
  config.max_batch = static_cast<std::size_t>(flags.get_int("batch", 16));
  // Generous relative to max_batch: sleep-based pacing is bursty, and a
  // queue bound close to the batch size would shed on pacing jitter alone.
  config.max_queue = static_cast<std::size_t>(flags.get_int("max-queue", 256));
  config.deadline_ms =
      static_cast<std::uint32_t>(flags.get_int("deadline-ms", 0));
  const double probe_s = flags.get_double("probe-s", 1.0);
  const double load_s = flags.get_double("load-s", 2.0);
  const std::string sweep_conns_flag =
      flags.get_string("sweep-conns", "64,256,1024");
  const double sweep_s = flags.get_double("sweep-s", 2.0);
  // Thread-per-connection does not scale past its pool: run the threaded
  // transport only up to this many connections (the epoll rows keep going).
  const auto threaded_cap = static_cast<std::size_t>(
      flags.get_int("threaded-conn-cap", 64));
  const std::string json_path = flags.get_string("json", "");
  flags.check_unused();

  std::cout << "=== Overload: goodput and tail latency vs admission control"
            << " ===\n"
            << "workers=" << config.workers << " batch=" << config.max_batch
            << " max-queue=" << config.max_queue
            << " deadline-ms=" << config.deadline_ms
            << " probe-s=" << probe_s << " load-s=" << load_s << "\n\n";

  const double capacity = calibrate_capacity_qps(probe_s, config);
  std::cout << "calibrated capacity: " << static_cast<std::uint64_t>(capacity)
            << " q/s (closed loop)\n\n";

  abp::TextTable table({"load", "admission", "offered q/s", "goodput q/s",
                        "p50 ms", "p99 ms", "overloaded", "deadline"});
  for (const double mult : {0.5, 1.0, 2.0}) {
    for (const bool admission : {false, true}) {
      RunConfig cell_config = config;
      if (!admission) cell_config.max_queue = 0;
      const double rate = mult * capacity;
      const CellResult r = run_cell(rate, load_s, cell_config);
      table.add_row(
          {abp::TextTable::fmt(mult, 1) + "x", admission ? "on" : "off",
           std::to_string(static_cast<std::uint64_t>(rate)),
           std::to_string(static_cast<std::uint64_t>(
               static_cast<double>(r.ok) / r.elapsed_s)),
           abp::TextTable::fmt(r.latency_us.p50() / 1e3, 2),
           abp::TextTable::fmt(r.latency_us.p99() / 1e3, 2),
           std::to_string(r.overloaded),
           std::to_string(r.deadline_exceeded)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: at 2x load the unbounded queue converts overload"
               " into unbounded queueing delay (p99 grows with the window);"
               " with admission control the excess is shed as retryable"
               " `overloaded` and p99 stays near the 1x value.\n";

  const std::vector<std::size_t> sweep = parse_conn_list(sweep_conns_flag);
  if (sweep.empty()) return 0;

  const std::size_t fd_limit = raise_fd_limit();
  std::cout << "\n=== Connection scaling: threaded vs epoll over TCP ===\n"
            << "fd limit " << fd_limit << ", per-conn window 4, workers "
            << config.workers << ", batch " << config.max_batch
            << ", sweep-s " << sweep_s << "\n\n";

  bool healthy = true;
  double threaded_best_goodput = 0.0;
  double epoll_last_goodput = 0.0;  ///< at the largest epoll conn count run
  std::size_t epoll_last_conns = 0;
  abp::TextTable scale_table({"transport", "conns", "goodput q/s", "p50 ms",
                              "p99 ms", "dead", "fd hw", "submitted",
                              "completed", "shed", "reconciled"});
  struct SweepRow {
    TransportKind kind;
    std::size_t conns;
    double goodput;
    double p50_ms;
    double p99_ms;
    ScaleResult result;
  };
  std::vector<SweepRow> sweep_rows;
  for (const TransportKind kind :
       {TransportKind::kThreaded, TransportKind::kEpoll}) {
    for (const std::size_t conns : sweep) {
      if (kind == TransportKind::kThreaded && conns > threaded_cap) {
        std::cout << "note: skipping threaded @ " << conns
                  << " connections (thread-per-connection capped at "
                  << threaded_cap << "; raise --threaded-conn-cap to force)\n";
        continue;
      }
      // Server+client fds live in this one process: ~2 per connection plus
      // listener/epoll/eventfd overhead.
      if (conns * 2 + 64 > fd_limit) {
        std::cout << "note: skipping " << transport_kind_name(kind) << " @ "
                  << conns << " connections (needs ~" << conns * 2 + 64
                  << " fds, limit " << fd_limit << ")\n";
        continue;
      }
      const ScaleResult r = run_conn_scaling(kind, conns, sweep_s, config);
      const double goodput = static_cast<double>(r.ok) / r.elapsed_s;
      if (kind == TransportKind::kThreaded) {
        threaded_best_goodput = std::max(threaded_best_goodput, goodput);
      } else {
        epoll_last_goodput = goodput;
        epoll_last_conns = conns;
      }
      scale_table.add_row(
          {transport_kind_name(kind), std::to_string(conns),
           std::to_string(static_cast<std::uint64_t>(goodput)),
           abp::TextTable::fmt(r.latency_us.p50() / 1e3, 2),
           abp::TextTable::fmt(r.latency_us.p99() / 1e3, 2),
           std::to_string(r.dead_conns), std::to_string(r.fd_high_water),
           std::to_string(r.submitted), std::to_string(r.completed),
           std::to_string(r.shed), r.reconciled ? "yes" : "NO"});
      sweep_rows.push_back({kind, conns, goodput, r.latency_us.p50() / 1e3,
                            r.latency_us.p99() / 1e3, r});
      if (!r.reconciled) {
        healthy = false;
        std::cout << "RECONCILIATION FAILURE: " << transport_kind_name(kind)
                  << " @ " << conns << ": submitted " << r.submitted
                  << " != completed " << r.completed << " + shed " << r.shed
                  << "\n";
      }
      if (r.open_after_stop != 0) {
        healthy = false;
        std::cout << "LEAK: " << transport_kind_name(kind) << " @ " << conns
                  << " still reports " << r.open_after_stop
                  << " open connections after stop()\n";
      }
    }
  }
  scale_table.print(std::cout);
  if (!json_path.empty()) {
    // Machine-readable sweep dump: one object per cell, fd high-water
    // included so "epoll held N concurrent sockets" is checkable by a
    // script (fd_high_water must be >= conns for an honest cell).
    std::ofstream json(json_path);
    json << "[\n";
    for (std::size_t i = 0; i < sweep_rows.size(); ++i) {
      const SweepRow& row = sweep_rows[i];
      const ScaleResult& r = row.result;
      json << "  {\"transport\": \"" << transport_kind_name(row.kind)
           << "\", \"conns\": " << row.conns
           << ", \"goodput_qps\": " << static_cast<std::uint64_t>(row.goodput)
           << ", \"p50_ms\": " << row.p50_ms << ", \"p99_ms\": " << row.p99_ms
           << ", \"dead_conns\": " << r.dead_conns
           << ", \"fd_high_water\": " << r.fd_high_water
           << ", \"submitted\": " << r.submitted
           << ", \"completed\": " << r.completed << ", \"shed\": " << r.shed
           << ", \"reconciled\": " << (r.reconciled ? "true" : "false")
           << ", \"open_after_stop\": " << r.open_after_stop << "}"
           << (i + 1 < sweep_rows.size() ? "," : "") << "\n";
    }
    json << "]\n";
    std::cout << "\nwrote sweep JSON to " << json_path << "\n";
  }
  std::cout << "\nReading: the threaded transport's goodput is capped by its"
               " connection pool, while the epoll rows hold goodput as"
               " connections grow past the pool size — the event loop"
               " multiplexes every socket onto a few loop threads, so the"
               " concurrent-connection ceiling is the fd limit, not a thread"
               " count.\n";
  if (threaded_best_goodput > 0.0 && epoll_last_goodput > 0.0) {
    std::cout << "epoll @ " << epoll_last_conns << " conns vs threaded best: "
              << abp::TextTable::fmt(
                     epoll_last_goodput / threaded_best_goodput, 2)
              << "x goodput\n";
  }
  return healthy ? 0 : 1;
}
