/// examples/airdrop_recovery.cpp — the paper's §1 motivating scenario.
///
/// Beacons are air-dropped over a terrain with a central hilltop; they roll
/// downhill, leaving the hilltop (where the lighter sensor nodes sit)
/// beacon-poor. Merely doubling the airdrop would repeat the same bias
/// ("terrain commonality"); instead a robot surveys the terrain and places
/// a few beacons adaptively with the Grid algorithm until the localization
/// target is met.
///
///   ./airdrop_recovery [--beacons 60] [--budget 8] [--target 6.0] [--seed 3]
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "core/adaptive_session.h"
#include "core/simulation.h"
#include "field/generators.h"
#include "placement/grid_placement.h"
#include "radio/noise_model.h"
#include "radio/terrain_model.h"
#include "terrain/heightmap.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const auto beacons = static_cast<std::size_t>(flags.get_int("beacons", 60));
  const auto budget = static_cast<std::size_t>(flags.get_int("budget", 8));
  const double target = flags.get_double("target", 6.0);
  const std::uint64_t seed = flags.get_u64("seed", 3);
  flags.check_unused();

  const abp::AABB bounds = abp::AABB::square(100.0);
  const abp::HillTerrain hill(bounds, bounds.center(), /*height=*/30.0,
                              /*sigma=*/18.0);

  // Propagation: the paper's noise model, additionally attenuated where the
  // hill blocks line of sight.
  auto base = std::make_unique<abp::PerBeaconNoiseModel>(15.0, 0.3, seed);
  auto model = std::make_unique<abp::TerrainAwareModel>(*base, hill);

  abp::Simulation sim(bounds, 1.0, std::move(model), seed);
  // Keep the inner model alive for the simulation's lifetime.
  const auto keep_alive = std::move(base);

  // Air-drop: aimed uniformly, but beacons roll off the hill.
  abp::Rng drop_rng(seed);
  abp::airdrop(sim.mutable_field(), beacons, hill, drop_rng,
               /*roll_gain=*/25.0, /*jitter=*/1.5);
  sim.refresh();

  std::cout << "Airdrop over a hilltop: " << beacons << " beacons rolled "
            << "downhill; mean LE = " << abp::TextTable::fmt(sim.mean_error(), 2)
            << " m, uncovered = "
            << abp::TextTable::fmt(100.0 * sim.uncovered_fraction(), 1)
            << "% of the terrain\n\n";

  const abp::GridPlacement grid;
  const abp::SessionConfig session{.target_mean_error = target,
                                   .max_beacons = budget};
  const abp::SessionReport report = run_adaptive_session(sim, grid, session);

  abp::TextTable table(
      {"step", "placed at", "mean LE before", "mean LE after", "gain (m)"});
  for (const auto& s : report.steps) {
    table.add_row({std::to_string(s.step + 1),
                   "(" + abp::TextTable::fmt(s.position.x, 1) + ", " +
                       abp::TextTable::fmt(s.position.y, 1) + ")",
                   abp::TextTable::fmt(s.mean_before, 2),
                   abp::TextTable::fmt(s.mean_after, 2),
                   abp::TextTable::fmt(s.improvement(), 2)});
  }
  table.print(std::cout);
  std::cout << "\n"
            << (report.reached_target ? "target met" : "budget exhausted")
            << ": mean LE = " << abp::TextTable::fmt(report.final_mean_error, 2)
            << " m after " << report.beacons_added() << " adaptive beacons ("
            << "target " << target << " m)\n";
  return 0;
}
