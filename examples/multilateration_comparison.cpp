/// examples/multilateration_comparison.cpp — the §6 future-work study.
///
/// Compares proximity (centroid) localization against least-squares
/// multilateration on identical beacon fields, and shows how the right
/// placement algorithm differs: proximity error is governed by density
/// (Grid targets error mass), multilateration error by geometry (GDOP
/// placement targets the worst constellation).
///
///   ./multilateration_comparison [--beacons 25] [--ranging-sigma 0.05]
///                                [--noise 0.1] [--seed 17] [--points 400]
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/simulation.h"
#include "loc/connectivity.h"
#include "loc/localizer.h"
#include "loc/multilateration.h"
#include "placement/gdop_placement.h"
#include "placement/grid_placement.h"

namespace {

struct Quality {
  double proximity_mean;
  double multilateration_mean;
  double gdop_p90;
  double coverage3;  ///< fraction of points hearing >= 3 beacons
};

Quality measure(const abp::Simulation& sim, const abp::RangingModel& ranging,
                std::size_t sample_points, abp::Rng& rng) {
  const abp::CentroidLocalizer proximity(sim.field(), sim.model());
  const abp::MultilaterationLocalizer multi(sim.field(), ranging);
  std::vector<double> prox_err, multi_err, gdops;
  std::size_t covered3 = 0;
  for (std::size_t s = 0; s < sample_points; ++s) {
    const abp::Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    prox_err.push_back(proximity.error(p));
    multi_err.push_back(multi.error(p));
    const auto beacons = connected_beacons(sim.field(), sim.model(), p);
    if (beacons.size() >= 3) ++covered3;
    gdops.push_back(std::min(abp::gdop(p, beacons), 50.0));
  }
  return {abp::mean(prox_err), abp::mean(multi_err),
          abp::quantile(gdops, 0.9),
          static_cast<double>(covered3) / static_cast<double>(sample_points)};
}

}  // namespace

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const auto beacons = static_cast<std::size_t>(flags.get_int("beacons", 60));
  const double ranging_sigma = flags.get_double("ranging-sigma", 0.05);
  const double noise = flags.get_double("noise", 0.1);
  const std::uint64_t seed = flags.get_u64("seed", 17);
  const auto points = static_cast<std::size_t>(flags.get_int("points", 400));
  flags.check_unused();

  std::cout << "Proximity vs multilateration, " << beacons
            << " beacons, ranging noise " << 100.0 * ranging_sigma << "%\n\n";

  abp::TextTable table({"placement", "proximity mean LE (m)",
                        "multilateration mean LE (m)", "GDOP p90",
                        ">=3 beacons (%)"});

  const abp::GridPlacement grid_alg;
  const abp::GdopPlacement gdop_alg;
  const struct {
    const char* label;
    const abp::PlacementAlgorithm* alg;
  } rows[] = {{"none (baseline)", nullptr},
              {"grid (+3 beacons)", &grid_alg},
              {"gdop (+3 beacons)", &gdop_alg}};

  for (const auto& row : rows) {
    abp::Simulation sim({.noise = noise, .seed = seed});
    sim.deploy_uniform(beacons);
    const abp::RangingModel ranging(sim.model(), ranging_sigma, seed ^ 0x5A);
    if (row.alg != nullptr) {
      for (int k = 0; k < 3; ++k) sim.place_with(*row.alg);
    }
    abp::Rng sample_rng(seed + 99);  // same sample points for every row
    const Quality q = measure(sim, ranging, points, sample_rng);
    table.add_row({row.label, abp::TextTable::fmt(q.proximity_mean, 2),
                   abp::TextTable::fmt(q.multilateration_mean, 2),
                   abp::TextTable::fmt(q.gdop_p90, 2),
                   abp::TextTable::fmt(100.0 * q.coverage3, 1)});
  }
  table.print(std::cout);
  std::cout << "\nProximity error tracks density; multilateration error "
               "tracks ranging coverage and geometry (GDOP). See "
               "bench_ablation_multilateration for the full sweep (§6).\n";
  return 0;
}
