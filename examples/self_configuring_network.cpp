/// examples/self_configuring_network.cpp — the §6 "alternative approach":
/// an over-provisioned beacon deployment configures ITSELF. Beacons run
/// the distributed self-scheduling protocol (local neighbour counts only,
/// no global error map), the active subset is persisted to disk in the
/// library's text format, reloaded, and verified to provide the same
/// localization quality — the full lifecycle of an unattended network.
///
///   ./self_configuring_network [--beacons 200] [--noise 0.1] [--seed 23]
///                              [--out /tmp/active_field.txt]
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "field/generators.h"
#include "io/field_io.h"
#include "loc/error_map.h"
#include "loc/render.h"
#include "placement/distributed_scheduler.h"
#include "radio/noise_model.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const auto beacons = static_cast<std::size_t>(flags.get_int("beacons", 200));
  const double noise = flags.get_double("noise", 0.1);
  const std::uint64_t seed = flags.get_u64("seed", 23);
  const std::string out_path =
      flags.get_string("out", "/tmp/abp_active_field.txt");
  flags.check_unused();

  const abp::AABB bounds = abp::AABB::square(100.0);
  const abp::PerBeaconNoiseModel model(15.0, noise, seed);
  const abp::Lattice2D lattice(bounds, 1.0);

  // 1. Over-provisioned random deployment (≈2.4x the saturation density).
  abp::BeaconField field(bounds, model.max_range());
  abp::Rng rng(seed);
  scatter_uniform(field, beacons, rng);
  abp::ErrorMap map(lattice);
  map.compute(field, model);
  const double all_active_error = map.mean();

  std::cout << "Deployed " << beacons << " beacons ("
            << abp::TextTable::fmt(field.density() * 1e4, 1)
            << " per hectare); all active: mean LE = "
            << abp::TextTable::fmt(all_active_error, 2) << " m\n\n";

  // 2. Distributed self-scheduling: every beacon decides from local
  //    neighbour counts whether to transmit.
  abp::Rng protocol_rng(seed ^ 0x5E1F);
  const auto result = distributed_density_control(field, {}, protocol_rng);
  map.compute(field, model);

  std::cout << "Self-scheduling converged after " << result.rounds
            << " rounds: " << result.final_active << " of "
            << beacons << " beacons stay active; mean LE = "
            << abp::TextTable::fmt(map.mean(), 2) << " m ("
            << abp::TextTable::fmt(
                   100.0 * (map.mean() / all_active_error - 1.0), 1)
            << "% error for "
            << abp::TextTable::fmt(
                   100.0 * (1.0 - static_cast<double>(result.final_active) /
                                       static_cast<double>(beacons)),
                   0)
            << "% energy saved)\n\n";
  abp::render_error_map(std::cout, map, &field, {.show_beacons = true});
  std::cout << abp::render_legend() << "\n\n";

  // 3. Persist the configured field and prove the round trip.
  save_field(out_path, field);
  const abp::BeaconField reloaded = abp::load_field(out_path);
  abp::ErrorMap reloaded_map(lattice);
  reloaded_map.compute(reloaded, model);
  std::cout << "Saved to " << out_path << " and reloaded: "
            << reloaded.active_count() << " active beacons, mean LE = "
            << abp::TextTable::fmt(reloaded_map.mean(), 2)
            << " m (identical: "
            << (reloaded_map.mean() == map.mean() ? "yes" : "NO")
            << ")\n";
  return 0;
}
