/// examples/quickstart.cpp — smallest end-to-end tour of the public API.
///
/// Sets up the paper's simulation (Table 1 parameters), deploys a sparse
/// random beacon field, and lets each §3.2 algorithm place one additional
/// beacon, printing the improvement each achieves on the same field.
///
///   ./quickstart [--beacons 40] [--noise 0.3] [--seed 7]
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "core/simulation.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const auto beacons = static_cast<std::size_t>(flags.get_int("beacons", 40));
  const double noise = flags.get_double("noise", 0.0);
  const std::uint64_t seed = flags.get_u64("seed", 7);
  flags.check_unused();

  const abp::RandomPlacement random;
  const abp::MaxPlacement max;
  const abp::GridPlacement grid;
  const abp::PlacementAlgorithm* algorithms[] = {&random, &max, &grid};

  std::cout << "Adaptive Beacon Placement quickstart\n"
            << "terrain 100x100 m, R=15 m, " << beacons
            << " random beacons, Noise=" << noise << "\n\n";

  abp::TextTable table({"algorithm", "placed at", "mean LE before (m)",
                        "mean LE after (m)", "improvement (m)"});
  for (const auto* alg : algorithms) {
    // A fresh identically-seeded simulation per algorithm: all three are
    // compared on the same beacon field and noise landscape.
    abp::Simulation sim({.noise = noise, .seed = seed});
    sim.deploy_uniform(beacons);
    const double before = sim.mean_error();
    const abp::BeaconId id = sim.place_with(*alg);
    const abp::Vec2 pos = sim.field().get(id)->pos;
    table.add_row({alg->name(),
                   "(" + abp::TextTable::fmt(pos.x, 1) + ", " +
                       abp::TextTable::fmt(pos.y, 1) + ")",
                   abp::TextTable::fmt(before, 2),
                   abp::TextTable::fmt(sim.mean_error(), 2),
                   abp::TextTable::fmt(before - sim.mean_error(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nGrid should achieve the largest improvement on sparse "
               "fields (paper §4.2, Fig 5).\n";
  return 0;
}
