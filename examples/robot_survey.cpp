/// examples/robot_survey.cpp — the §3 exploration procedure, visualized.
///
/// A GPS-equipped robot walks a boustrophedon tour over a sparse beacon
/// field, measuring localization error as it goes (optionally with GPS
/// error and a coarser tour stride). The measured map drives one Grid
/// placement; before/after error maps are rendered as ASCII heat maps.
///
///   ./robot_survey [--beacons 30] [--stride 2] [--gps-sigma 0.0]
///                  [--noise 0.1] [--seed 11]
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "core/simulation.h"
#include "loc/render.h"
#include "placement/grid_placement.h"
#include "robot/surveyor.h"

int main(int argc, char** argv) {
  const abp::Flags flags(argc, argv);
  const auto beacons = static_cast<std::size_t>(flags.get_int("beacons", 30));
  const auto stride = static_cast<std::size_t>(flags.get_int("stride", 2));
  const double gps_sigma = flags.get_double("gps-sigma", 0.0);
  const double noise = flags.get_double("noise", 0.1);
  const std::uint64_t seed = flags.get_u64("seed", 11);
  flags.check_unused();

  abp::Simulation sim({.noise = noise, .seed = seed});
  sim.deploy_uniform(beacons);

  std::cout << "Before adaptive placement (mean LE = "
            << abp::TextTable::fmt(sim.mean_error(), 2) << " m):\n";
  abp::render_error_map(std::cout, sim.error_map(), &sim.field(),
                        {.show_beacons = true});

  // The robot explores with a (possibly coarse) tour and imperfect GPS.
  const abp::Surveyor surveyor(sim.field(), sim.model(),
                               {.gps = abp::GpsModel(gps_sigma)});
  abp::Rng tour_rng(seed ^ 0xBEEF);
  const auto tour = abp::boustrophedon_tour(sim.lattice(), stride);
  const abp::SurveyData survey =
      surveyor.survey(sim.lattice(), tour, tour_rng);

  std::cout << "\nRobot toured " << tour.size() << " of "
            << sim.lattice().size() << " lattice points ("
            << abp::TextTable::fmt(100.0 * survey.coverage(), 1)
            << "% coverage, "
            << abp::TextTable::fmt(tour_length(sim.lattice(), tour) / 1000.0, 2)
            << " km path, GPS sigma " << gps_sigma << " m)\n";

  const abp::GridPlacement grid;
  const abp::BeaconId id = sim.place_from_survey(survey, grid);
  const abp::Vec2 pos = sim.field().get(id)->pos;

  std::cout << "Grid algorithm placed a beacon at ("
            << abp::TextTable::fmt(pos.x, 1) << ", "
            << abp::TextTable::fmt(pos.y, 1) << ")\n\n"
            << "After (mean LE = " << abp::TextTable::fmt(sim.mean_error(), 2)
            << " m):\n";
  abp::render_error_map(std::cout, sim.error_map(), &sim.field(),
                        {.show_beacons = true});
  std::cout << abp::render_legend() << '\n';
  return 0;
}
